package sim

import (
	"fmt"
	"math"

	"wsnbcast/internal/grid"
)

// IndexLink is one undirected lattice link by dense endpoint indices,
// A < B. Link ids used by Session.SetLinkDown/SetLinkUp index the
// LinksOf table.
type IndexLink struct {
	A, B int32
}

// LinksOf enumerates the undirected links of t in dense index order:
// for each node i, its neighbors nb > i in IndexNeighbors emission
// order. The table — and therefore every link id a Session accepts —
// is a pure function of the topology, so callers that persist link ids
// (checkpoints, churn chains) can rebuild the same table later.
func LinksOf(t grid.Topology) []IndexLink {
	var links []IndexLink
	var buf []int32
	for i := 0; i < t.NumNodes(); i++ {
		buf = grid.IndexNeighbors(t, i, buf[:0])
		for _, nb := range buf {
			if nb > int32(i) {
				links = append(links, IndexLink{A: int32(i), B: nb})
			}
		}
	}
	return links
}

// A Session is a round-persistent simulation context: one (topology,
// protocol, config) binding whose radio graph survives across Run
// calls and is mutated incrementally. Where sim.Run pays a full
// mutable-adjacency rebuild plus Coord round-trips for Down/DownLinks
// on every call, a Session applies each state change exactly once, in
// dense-index space, when it happens:
//
//   - SetNodeDown nils the node's row and splices it out of its
//     neighbors' rows — O(deg²), not O(V·deg);
//   - SetLinkDown / SetLinkUp edit exactly the two endpoint rows;
//   - compiled relay plans are cached per source for the session's
//     lifetime (a plan is a pure function of (topology, protocol,
//     source) — the Protocol contract — so graph mutations never
//     invalidate one);
//   - the Result's slices live in a session-owned arena, rewritten in
//     place each Run.
//
// The live adjacency invariant — every live node's row equals its
// pristine row filtered by (neighbor alive && link up), order
// preserved — is exactly the row sim.Run constructs from equivalent
// Down/DownLinks lists, which is why session results are
// byte-identical to the one-shot path (locked by the differential
// tests).
//
// The returned Result and its slices are valid until the next Run,
// Reset, or mutation on the same session. A Session is not safe for
// concurrent use; Config.Workers still parallelizes inside each Run.
type Session struct {
	topo  grid.Topology
	proto Protocol
	cfg   Config // defaults applied once at NewSession
	v     int

	full [][]int32 // pristine adjacency, never mutated (may be cache-shared)
	adj  [][]int32 // live adjacency: private rows, mutated incrementally

	down  []bool // failed-node mask, allocated on first SetNodeDown
	downN int

	// Link state, built lazily on first SetLinkDown/SetLinkUp/NumLinks:
	// the LinksOf table, the per-link down flags, and rowLink —
	// rowLink[i][k] is the link id of (i, full[i][k]), which lets
	// SetLinkUp rebuild an endpoint row by filtering the pristine row
	// without any searching.
	links    []IndexLink
	linkDown []bool
	rowLink  [][]int32

	plans map[int32]*relayPlan // per-source compiled plans, session-cached

	res   Result
	arena resultArena

	// Delta-propagation state (delta.go): the previous round's full
	// propagation artifacts plus the mutation seeds accumulated since,
	// and the scratch arena RunDelta's cone walk runs in.
	dcache    deltaCache
	dx        deltaScratch
	deltaHits uint64
	deltaFall [fbCount]uint64
}

// NewSession validates the configuration once and builds the pristine
// and live adjacency. Config.Down and Config.DownLinks must be empty:
// the session owns node and link state via SetNodeDown / SetLinkDown.
func NewSession(t grid.Topology, p Protocol, cfg Config) (*Session, error) {
	if t == nil || p == nil {
		return nil, fmt.Errorf("sim: session needs a topology and a protocol")
	}
	if len(cfg.Down) > 0 || len(cfg.DownLinks) > 0 {
		return nil, fmt.Errorf("sim: session owns Down and DownLinks; use SetNodeDown/SetLinkDown")
	}
	v := t.NumNodes()
	cfg = cfg.withDefaults(v)
	if err := cfg.Packet.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxSlots >= math.MaxInt32 {
		return nil, fmt.Errorf("sim: MaxSlots %d exceeds the engine's int32 slot limit", cfg.MaxSlots)
	}
	s := &Session{
		topo:  t,
		proto: p,
		cfg:   cfg,
		v:     v,
		full:  buildAdjacency(t, false),
		plans: make(map[int32]*relayPlan),
	}
	s.adj = copyAdjacency(s.full)
	return s, nil
}

// NumNodes returns the session topology's node count.
func (s *Session) NumNodes() int { return s.v }

// NumLinks returns the session topology's undirected link count (the
// length of its LinksOf table).
func (s *Session) NumLinks() int {
	s.ensureLinks()
	return len(s.links)
}

// Link returns the endpoints of link id, panicking on an out-of-range
// id like a slice index would.
func (s *Session) Link(id int) IndexLink {
	s.ensureLinks()
	return s.links[id]
}

// NodeDown reports whether the node at dense index i has been failed.
func (s *Session) NodeDown(i int) bool { return s.down != nil && s.down[i] }

// LinkDown reports whether link id is currently down.
func (s *Session) LinkDown(id int) bool {
	s.ensureLinks()
	return s.linkDown[id]
}

// SetNodeDown fails the node at dense index i: it is spliced out of
// its neighbors' rows (O(deg²)) and its own row is dropped, exactly
// the graph sim.Run builds for a Config.Down entry. Idempotent; node
// failures are permanent for the life of the session (Reset revives
// everything). The splice walks the pristine row, so links already cut
// by SetLinkDown are simply no-ops.
func (s *Session) SetNodeDown(i int) error {
	if i < 0 || i >= s.v {
		return fmt.Errorf("sim: node index %d outside %d-node mesh", i, s.v)
	}
	if s.down == nil {
		s.down = make([]bool, s.v)
	}
	if s.down[i] {
		return nil
	}
	s.down[i] = true
	s.downN++
	for _, nb := range s.full[i] {
		s.adj[nb] = removeNeighbor(s.adj[nb], int32(i))
	}
	s.adj[i] = nil
	s.noteDeath(int32(i))
	return nil
}

// SetLinkDown cuts link id (a LinksOf index): both directions leave
// the radio graph by editing exactly the two endpoint rows. Idempotent.
func (s *Session) SetLinkDown(id int) error {
	s.ensureLinks()
	if id < 0 || id >= len(s.links) {
		return fmt.Errorf("sim: link id %d outside %d-link table", id, len(s.links))
	}
	if s.linkDown[id] {
		return nil
	}
	s.linkDown[id] = true
	lk := s.links[id]
	s.adj[lk.A] = removeNeighbor(s.adj[lk.A], lk.B)
	s.adj[lk.B] = removeNeighbor(s.adj[lk.B], lk.A)
	s.noteFlip(int32(id))
	return nil
}

// SetLinkUp restores link id. The two endpoint rows are rebuilt by
// filtering the pristine rows against the current node and link state,
// which restores the IndexNeighbors emission order an insertion could
// not — the invariant the byte-identity argument rests on. Rows of
// failed endpoints stay empty. Idempotent.
func (s *Session) SetLinkUp(id int) error {
	s.ensureLinks()
	if id < 0 || id >= len(s.links) {
		return fmt.Errorf("sim: link id %d outside %d-link table", id, len(s.links))
	}
	if !s.linkDown[id] {
		return nil
	}
	s.linkDown[id] = false
	lk := s.links[id]
	s.rebuildRow(lk.A)
	s.rebuildRow(lk.B)
	s.noteFlip(int32(id))
	return nil
}

// rebuildRow refilters node i's live row from its pristine row. The
// row's backing array is reused: removeNeighbor never moves a row, so
// capacity equals the pristine length.
func (s *Session) rebuildRow(i int32) {
	if s.down != nil && s.down[i] {
		return // failed nodes keep their nil row
	}
	row := s.adj[i][:0]
	for k, nb := range s.full[i] {
		if s.down != nil && s.down[nb] {
			continue
		}
		if s.linkDown[s.rowLink[i][k]] {
			continue
		}
		row = append(row, nb)
	}
	s.adj[i] = row
}

// ensureLinks lazily builds the link table, the per-link down flags,
// and the row→link-id mapping. Ids match LinksOf exactly: for node i,
// its greater neighbors in pristine row order. The reverse direction
// (nb < i) is resolved by ranking i among nb's greater neighbors —
// O(V·deg²) once, never on the round path.
func (s *Session) ensureLinks() {
	if s.linkDown != nil || s.links != nil {
		return
	}
	first := make([]int32, s.v) // first[i] = id of node i's first greater-neighbor link
	total, n := 0, int32(0)
	for i, row := range s.full {
		first[i] = n
		total += len(row)
		for _, nb := range row {
			if nb > int32(i) {
				n++
			}
		}
	}
	s.links = make([]IndexLink, 0, n)
	s.rowLink = make([][]int32, s.v)
	flat := make([]int32, 0, total)
	for i, row := range s.full {
		gi := first[i]
		for _, nb := range row {
			if nb > int32(i) {
				s.links = append(s.links, IndexLink{A: int32(i), B: nb})
				flat = append(flat, gi)
				gi++
				continue
			}
			id := first[nb]
			for _, x := range s.full[nb] {
				if x == int32(i) {
					break
				}
				if x > nb {
					id++
				}
			}
			flat = append(flat, id)
		}
		s.rowLink[i] = flat[len(flat)-len(row) : len(flat) : len(flat)]
	}
	s.linkDown = make([]bool, len(s.links))
}

// Reset revives every node and link, restoring the pristine graph.
// Plans, arenas and the link table are retained; a restored checkpoint
// replays its SetNodeDown/SetLinkDown calls on top of a Reset session
// to reconstruct the exact live graph.
func (s *Session) Reset() {
	s.adj = copyAdjacency(s.full)
	if s.down != nil {
		clear(s.down)
	}
	s.downN = 0
	if s.linkDown != nil {
		clear(s.linkDown)
	}
	s.invalidateCache()
	// A Reset starts a fresh study state; overload history from the
	// previous one has no bearing on it.
	s.dcache.overloads, s.dcache.suppress, s.dcache.suppressLen = 0, 0, 0
}

// Run simulates one broadcast from src on the session's current live
// graph, reusing the session's compiled plan for that source and
// writing the Result into the session arena. Semantics, error cases
// and — for equal node/link state — output bytes match sim.Run
// exactly; only the setup cost differs. The Result is valid until the
// next Run, Reset, or mutation.
func (s *Session) Run(src grid.Coord) (*Result, error) {
	if err := s.validateSource(src); err != nil {
		return nil, err
	}
	return s.runPlain(src)
}

// validateSource applies Run's source checks, shared with RunDelta so
// both entry points return identical errors.
func (s *Session) validateSource(src grid.Coord) error {
	if !s.topo.Contains(src) {
		return fmt.Errorf("sim: source %s outside %s mesh", src, s.topo.Kind())
	}
	if s.down != nil && s.down[s.topo.Index(src)] {
		return fmt.Errorf("sim: source %s is down", src)
	}
	return nil
}

// planOf returns the session-cached compiled plan for src.
func (s *Session) planOf(src grid.Coord, srcIdx int32) *relayPlan {
	pl := s.plans[srcIdx]
	if pl == nil {
		pl = planFor(s.topo, s.proto, src)
		s.plans[srcIdx] = pl
	}
	return pl
}

// runDown returns the down mask the engine should be bound with:
// sim.Run binds a nil mask when Config.Down is empty; mirroring that
// keeps the engine's nil-vs-allocated branches — and the Result's
// downMask — identical while every node is alive.
func (s *Session) runDown() []bool {
	if s.downN == 0 {
		return nil
	}
	return s.down
}

// runPlain is the full, non-capturing simulation path: exactly the
// pre-delta Session.Run body. It invalidates the cached Result bytes
// (s.res is about to be overwritten) but leaves the delta cache's
// replay snapshots alone — a RunDelta for the cached source can still
// re-engage afterwards because mutation seeds keep accumulating.
func (s *Session) runPlain(src grid.Coord) (*Result, error) {
	srcIdx := int32(s.topo.Index(src))
	pl := s.planOf(src, srcIdx)
	s.dcache.resValid = false
	e := getEngine(s.topo, s.proto, pl, src, s.cfg, nil, s.adj, s.runDown())
	defer e.release()
	if err := e.runSchedule(); err != nil {
		return nil, err
	}
	res := e.finishInto(&s.res, &s.arena)
	e.flushTrace()
	return res, nil
}
