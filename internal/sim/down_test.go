package sim

import (
	"testing"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/radio"
)

// Failed nodes neither transmit, hear, nor decode; the repair planner
// routes the broadcast around them when the live graph stays connected.
func TestDownNodesRoutedAround(t *testing.T) {
	topo := grid.NewMesh2D4(8, 8)
	src := grid.C2(1, 1)
	down := []grid.Coord{grid.C2(4, 4), grid.C2(5, 4), grid.C2(4, 5)}
	r, err := Run(topo, allRelay("flood"), src, Config{Down: down})
	if err != nil {
		t.Fatal(err)
	}
	if r.Down != 3 {
		t.Errorf("Down = %d", r.Down)
	}
	if r.Total != 61 {
		t.Errorf("Total = %d, want 61 live nodes", r.Total)
	}
	if !r.FullyReached() {
		t.Errorf("live nodes not all reached: %d/%d", r.Reached, r.Total)
	}
	for _, c := range down {
		i := topo.Index(c)
		if r.DecodeSlot[i] >= 0 || len(r.TxSlots[i]) > 0 {
			t.Errorf("down node %v participated", c)
		}
		if !r.IsDown(i) {
			t.Errorf("IsDown(%v) = false", c)
		}
	}
	if err := r.Validate(topo, radio.Default(), radio.CanonicalPacket()); err != nil {
		t.Fatal(err)
	}
}

// A failure that cuts the live graph leaves the far side unreached —
// and the engine reports that honestly rather than looping.
func TestDownNodesPartition(t *testing.T) {
	topo := grid.NewMesh2D4(7, 1) // a line
	down := []grid.Coord{grid.C2(4, 1)}
	r, err := Run(topo, allRelay("flood"), grid.C2(1, 1), Config{Down: down})
	if err != nil {
		t.Fatal(err)
	}
	if r.FullyReached() {
		t.Error("partitioned network reported fully reached")
	}
	if r.Reached != 3 {
		t.Errorf("Reached = %d, want 3 (the near side)", r.Reached)
	}
}

func TestDownValidation(t *testing.T) {
	topo := grid.NewMesh2D4(5, 5)
	if _, err := Run(topo, allRelay("x"), grid.C2(1, 1),
		Config{Down: []grid.Coord{grid.C2(1, 1)}}); err == nil {
		t.Error("down source accepted")
	}
	if _, err := Run(topo, allRelay("x"), grid.C2(1, 1),
		Config{Down: []grid.Coord{grid.C2(9, 9)}}); err == nil {
		t.Error("out-of-mesh down node accepted")
	}
}

// Rx accounting excludes down listeners: energy shrinks when neighbors
// die.
func TestDownReducesRx(t *testing.T) {
	topo := grid.NewMesh2D4(5, 5)
	src := grid.C2(1, 1)
	full, err := Run(topo, allRelay("flood"), src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	damaged, err := Run(topo, allRelay("flood"), src, Config{Down: []grid.Coord{grid.C2(5, 5)}})
	if err != nil {
		t.Fatal(err)
	}
	if damaged.Rx >= full.Rx {
		t.Errorf("Rx with a dead node (%d) not below full (%d)", damaged.Rx, full.Rx)
	}
}
