package sim

import (
	"fmt"

	"wsnbcast/internal/grid"
)

// This file is the simulator's only source of randomness, and it is
// deliberately not math/rand: every draw is a counter-based hash of
// (seed, domain, coordinates), so a draw's value depends on *what* is
// being decided, never on *how many* draws happened before it. That
// property is what keeps the stochastic path inside the determinism
// contract of internal/sweep — worker count, job order, and the repair
// planner's schedule replays cannot shift any draw — and it gives
// common-random-numbers coupling across loss rates: the same
// (seed, slot, tx, rx) uniform is compared against different
// thresholds, so differences between curve points reflect the rate
// change rather than re-sampled noise.

// Domain-separation constants: the same seed must never produce
// correlated draws for link loss and node failure.
const (
	domainLoss    uint64 = 0x6c6f7373 // "loss"
	domainFailure uint64 = 0x6661696c // "fail"
	domainRep     uint64 = 0x72657020 // "rep "
	domainChurn   uint64 = 0x6368726e // "chrn"
)

// golden is the splitmix64 increment (2^64 / phi).
const golden uint64 = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 finalizer: an invertible avalanche that maps
// a counter to a well-distributed 64-bit word.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// keyedUint64 absorbs the words into a splitmix64-style chain and
// returns a uniform 64-bit value. Each absorbed word is offset by the
// golden increment so that (a, b) and (a+1, b-1) diverge.
func keyedUint64(words ...uint64) uint64 {
	h := golden
	for _, w := range words {
		h = mix64(h + golden + w)
	}
	return h
}

// keyedUnit maps the keyed draw to a uniform float64 in [0, 1) using
// the top 53 bits.
func keyedUnit(words ...uint64) float64 {
	return float64(keyedUint64(words...)>>11) * 0x1p-53
}

// Channel decides per-link reception. Deliver reports whether rx hears
// tx's transmission in the given slot; a dropped copy contributes
// nothing at rx — no reception, no energy, no collision. Deliver must
// be a pure function of its arguments: the engine replays schedules
// during repair planning and the sweep engine calls it from many
// goroutines, so any draw may be evaluated several times and in any
// order, and must come out the same every time.
type Channel interface {
	Deliver(slot int, tx, rx int32) bool
}

// BernoulliLoss is a Channel that drops each (slot, tx, rx) reception
// independently with probability Rate, using counter-based draws keyed
// by (Seed, slot, tx, rx). The zero Rate delivers everything; two
// channels with equal seeds and different rates share their underlying
// uniforms, so raising the rate only ever removes deliveries.
type BernoulliLoss struct {
	Seed uint64
	Rate float64
}

// NewBernoulliLoss returns the lossy channel, or nil when rate <= 0 so
// the engine keeps its exact zero-overhead deterministic path. It
// panics when rate is not in [0, 1] — callers validate user input
// before building configs.
func NewBernoulliLoss(seed uint64, rate float64) Channel {
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("sim: loss rate %g outside [0, 1]", rate))
	}
	if rate <= 0 {
		return nil
	}
	return BernoulliLoss{Seed: seed, Rate: rate}
}

// Deliver implements Channel: the copy arrives iff the link's uniform
// clears the loss threshold.
func (b BernoulliLoss) Deliver(slot int, tx, rx int32) bool {
	u := keyedUnit(b.Seed, domainLoss, uint64(slot), uint64(uint32(tx)), uint64(uint32(rx)))
	return u >= b.Rate
}

// ReplicationSeed derives the seed of replication rep from a study
// seed. The derivation deliberately ignores the loss and failure rates:
// replication rep shares its uniforms across every rate, so curves over
// a rate grid are coupled (common random numbers) and differences
// between grid points reflect the rate, not re-sampled noise.
func ReplicationSeed(seed uint64, rep int) uint64 {
	return keyedUint64(seed, domainRep, uint64(rep))
}

// ChurnUnit returns the uniform in [0, 1) that decides link `link`'s
// state transition in lifetime round `round`. The draw is keyed by
// (seed, domainChurn, round, link) — a distinct domain from the loss
// and failure chains, so a lifetime study with churn and per-slot loss
// under the same seed never compares the same uniform against two
// thresholds (see TestChurnDomainDisjoint / FuzzChurnDomainDisjoint).
// Both directions of an undirected link share one draw: churn flips
// links, not directed edges. As with loss, the uniform is shared
// across churn rates, so raising p_fail only ever fails more links.
func ChurnUnit(seed uint64, round int, link int32) float64 {
	return keyedUnit(seed, domainChurn, uint64(round), uint64(uint32(link)))
}

// SampleFailures samples pre-broadcast node failures: every node except
// the source fails independently with probability rate, keyed by
// (seed, node index) so one node's fate never shifts another's draw.
// The source is exempt — a broadcast study conditions on its origin
// being alive (sim.Run rejects a down source outright). The returned
// coordinates are in dense index order. Like the loss draws, the
// uniforms are shared across rates: a node down at rate p stays down
// at every p' > p under the same seed.
func SampleFailures(t grid.Topology, src grid.Coord, seed uint64, rate float64) []grid.Coord {
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("sim: failure rate %g outside [0, 1]", rate))
	}
	if rate <= 0 {
		return nil
	}
	var down []grid.Coord
	srcIdx := t.Index(src)
	for i := 0; i < t.NumNodes(); i++ {
		if i == srcIdx {
			continue
		}
		if keyedUnit(seed, domainFailure, uint64(i)) < rate {
			down = append(down, t.At(i))
		}
	}
	return down
}
