package sim

import (
	"strings"
	"testing"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/radio"
)

// testProto is a configurable protocol for engine tests.
type testProto struct {
	name    string
	relay   func(t grid.Topology, src, node grid.Coord) bool
	delay   func(t grid.Topology, src, node grid.Coord) int
	retrans func(t grid.Topology, src, node grid.Coord) []int
}

func (p testProto) Name() string { return p.name }

func (p testProto) IsRelay(t grid.Topology, src, node grid.Coord) bool {
	if p.relay == nil {
		return true
	}
	return p.relay(t, src, node)
}

func (p testProto) TxDelay(t grid.Topology, src, node grid.Coord) int {
	if p.delay == nil {
		return 1
	}
	return p.delay(t, src, node)
}

func (p testProto) Retransmits(t grid.Topology, src, node grid.Coord) []int {
	if p.retrans == nil {
		return nil
	}
	return p.retrans(t, src, node)
}

func allRelay(name string) testProto { return testProto{name: name} }

func noRelay(name string) testProto {
	return testProto{
		name:  name,
		relay: func(grid.Topology, grid.Coord, grid.Coord) bool { return false },
	}
}

func mustRun(t *testing.T, topo grid.Topology, p Protocol, src grid.Coord, cfg Config) *Result {
	t.Helper()
	r, err := Run(topo, p, src, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := r.Validate(topo, radio.Default(), radio.CanonicalPacket()); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return r
}

// A 1 x n line with every node relaying is collision-free and the
// counts are exactly computable: every node transmits once, delay is
// the farthest node's distance minus one.
func TestLineBroadcastExact(t *testing.T) {
	topo := grid.NewMesh2D4(9, 1)
	r := mustRun(t, topo, allRelay("line"), grid.C2(1, 1), Config{})
	if !r.FullyReached() {
		t.Fatalf("not fully reached: %v", r)
	}
	if r.Tx != 9 {
		t.Errorf("Tx = %d, want 9", r.Tx)
	}
	// Rx: interior transmitters have 2 neighbors, the two end nodes 1.
	if r.Rx != 7*2+2 {
		t.Errorf("Rx = %d, want 16", r.Rx)
	}
	if r.Collisions != 0 {
		t.Errorf("Collisions = %d, want 0", r.Collisions)
	}
	if r.Repairs != 0 {
		t.Errorf("Repairs = %d, want 0", r.Repairs)
	}
	// Node (x,1) decodes in slot x-2 (source transmits in slot 0).
	if r.Delay != 7 {
		t.Errorf("Delay = %d, want 7", r.Delay)
	}
	for x := 2; x <= 9; x++ {
		if d := r.DecodeSlot[topo.Index(grid.C2(x, 1))]; d != x-2 {
			t.Errorf("decode slot of (%d,1) = %d, want %d", x, d, x-2)
		}
	}
}

// Center source on a line: both directions propagate simultaneously
// without colliding (the two frontier nodes are never in range).
func TestLineCenterSource(t *testing.T) {
	topo := grid.NewMesh2D4(11, 1)
	r := mustRun(t, topo, allRelay("line"), grid.C2(6, 1), Config{})
	if !r.FullyReached() {
		t.Fatalf("unexpected: %v", r)
	}
	// The only collision is at the source itself, which both neighbors
	// hit simultaneously in slot 1 — harmless, it already holds the
	// message.
	if r.Collisions != 1 {
		t.Errorf("Collisions = %d, want 1 (at the source)", r.Collisions)
	}
	if r.Delay != 4 {
		t.Errorf("Delay = %d, want 4", r.Delay)
	}
	if r.Tx != 11 {
		t.Errorf("Tx = %d, want 11", r.Tx)
	}
}

// Flooding on a 3x3 von-Neumann mesh from the corner: the engine must
// detect the diagonal collisions and the repair pass must restore
// 100% reachability with exactly two repairs ((2,2) and (3,3) are
// permanently collided under pure flooding).
func TestFlooding3x3Repairs(t *testing.T) {
	topo := grid.NewMesh2D4(3, 3)
	var events []Event
	r := mustRun(t, topo, allRelay("flood"), grid.C2(1, 1), Config{Trace: CollectTrace(&events)})
	if !r.FullyReached() {
		t.Fatalf("not fully reached: %v", r)
	}
	if r.Repairs != 2 {
		t.Errorf("Repairs = %d, want 2", r.Repairs)
	}
	if r.Collisions == 0 {
		t.Error("expected collisions under flooding")
	}
	repairEvents := 0
	for _, e := range events {
		if e.Kind == EventRepair {
			repairEvents++
		}
	}
	if repairEvents != r.Repairs {
		t.Errorf("trace repairs = %d, result %d", repairEvents, r.Repairs)
	}
}

// With repair disabled, the same flooding run must report partial
// reachability instead of fixing it.
func TestDisableRepair(t *testing.T) {
	topo := grid.NewMesh2D4(3, 3)
	r := mustRun(t, topo, allRelay("flood"), grid.C2(1, 1), Config{DisableRepair: true})
	if r.FullyReached() {
		t.Fatal("flooding 3x3 from corner should not fully reach without repair")
	}
	if r.Reached != 7 {
		t.Errorf("Reached = %d, want 7 (all but (2,2) and (3,3))", r.Reached)
	}
	if r.Repairs != 0 {
		t.Errorf("Repairs = %d with repair disabled", r.Repairs)
	}
}

// A protocol with no relays forces the repair pass to carry the whole
// broadcast, one serialized transmission at a time.
func TestRepairOnlyBroadcast(t *testing.T) {
	topo := grid.NewMesh2D4(6, 1)
	r := mustRun(t, topo, noRelay("mute"), grid.C2(1, 1), Config{})
	if !r.FullyReached() {
		t.Fatalf("not reached: %v", r)
	}
	// Source covers (2,1); each remaining node needs one repair.
	if r.Repairs != 4 {
		t.Errorf("Repairs = %d, want 4", r.Repairs)
	}
	if r.Tx != 1+4 {
		t.Errorf("Tx = %d, want 5", r.Tx)
	}
}

// Designated retransmissions must appear as extra transmissions of the
// same node in later slots, and scheduling the same slot twice must
// collapse into one transmission.
func TestRetransmitsAndDedupe(t *testing.T) {
	topo := grid.NewMesh2D4(3, 1)
	p := testProto{
		name: "retrans",
		retrans: func(_ grid.Topology, _, node grid.Coord) []int {
			if node == (grid.C2(2, 1)) {
				return []int{1, 1, 2} // duplicate offset collapses
			}
			return nil
		},
	}
	r := mustRun(t, topo, p, grid.C2(1, 1), Config{})
	idx := topo.Index(grid.C2(2, 1))
	if got := len(r.TxSlots[idx]); got != 3 {
		t.Errorf("node (2,1) transmitted %d times, want 3 (first + offsets {1,2})", got)
	}
	want := []int{1, 2, 3}
	for i, s := range r.TxSlots[idx] {
		if s != want[i] {
			t.Errorf("tx slot[%d] = %d, want %d", i, s, want[i])
		}
	}
	if len(r.RetransmitNodes()) != 1 || r.RetransmitNodes()[0] != idx {
		t.Errorf("RetransmitNodes = %v", r.RetransmitNodes())
	}
}

// Retransmit offsets < 1 are ignored (contract guard).
func TestRetransmitOffsetGuard(t *testing.T) {
	topo := grid.NewMesh2D4(3, 1)
	p := testProto{
		name: "badoffsets",
		retrans: func(_ grid.Topology, _, node grid.Coord) []int {
			return []int{0, -3}
		},
	}
	r := mustRun(t, topo, p, grid.C2(1, 1), Config{})
	for i, slots := range r.TxSlots {
		if len(slots) > 1 {
			t.Errorf("node %d transmitted %d times despite invalid offsets", i, len(slots))
		}
	}
}

// TxDelay below 1 is clamped to 1.
func TestTxDelayClamp(t *testing.T) {
	topo := grid.NewMesh2D4(3, 1)
	p := testProto{
		name:  "clamp",
		delay: func(grid.Topology, grid.Coord, grid.Coord) int { return 0 },
	}
	r := mustRun(t, topo, p, grid.C2(1, 1), Config{})
	if !r.FullyReached() {
		t.Fatalf("not reached: %v", r)
	}
	idx := topo.Index(grid.C2(2, 1))
	if r.TxSlots[idx][0] != 1 {
		t.Errorf("tx slot = %d, want 1 (clamped)", r.TxSlots[idx][0])
	}
}

// Larger TxDelay defers the forward and lengthens the delay metric.
func TestTxDelayDefers(t *testing.T) {
	topo := grid.NewMesh2D4(4, 1)
	p := testProto{
		name:  "slow",
		delay: func(grid.Topology, grid.Coord, grid.Coord) int { return 3 },
	}
	r := mustRun(t, topo, p, grid.C2(1, 1), Config{})
	// (2,1) decodes 0, transmits 3; (3,1) decodes 3, transmits 6;
	// (4,1) decodes 6.
	if r.Delay != 6 {
		t.Errorf("Delay = %d, want 6", r.Delay)
	}
}

func TestSourceOutsideErrors(t *testing.T) {
	topo := grid.NewMesh2D4(4, 4)
	if _, err := Run(topo, allRelay("x"), grid.C2(5, 1), Config{}); err == nil {
		t.Error("out-of-mesh source accepted")
	}
}

func TestBadPacketErrors(t *testing.T) {
	topo := grid.NewMesh2D4(4, 4)
	cfg := Config{Packet: radio.Packet{Bits: -1, NeighborDistM: 1}}
	if _, err := Run(topo, allRelay("x"), grid.C2(1, 1), cfg); err == nil {
		t.Error("bad packet accepted")
	}
}

func TestMaxSlotsGuard(t *testing.T) {
	topo := grid.NewMesh2D4(40, 1)
	p := testProto{
		name:  "crawl",
		delay: func(grid.Topology, grid.Coord, grid.Coord) int { return 5 },
	}
	if _, err := Run(topo, p, grid.C2(1, 1), Config{MaxSlots: 10}); err == nil {
		t.Error("MaxSlots guard did not fire")
	} else if !strings.Contains(err.Error(), "runaway") {
		t.Errorf("unexpected error: %v", err)
	}
}

// Single-node network: the source transmits into the void.
func TestSingleNode(t *testing.T) {
	topo := grid.NewMesh2D4(1, 1)
	r := mustRun(t, topo, allRelay("solo"), grid.C2(1, 1), Config{})
	if r.Tx != 1 || r.Rx != 0 || r.Delay != 0 || !r.FullyReached() {
		t.Errorf("unexpected: %v", r)
	}
}

// Determinism: two identical runs produce identical results and traces.
func TestDeterminism(t *testing.T) {
	topo := grid.NewMesh2D8(9, 7)
	var ev1, ev2 []Event
	r1 := mustRun(t, topo, allRelay("flood"), grid.C2(4, 4), Config{Trace: CollectTrace(&ev1)})
	r2 := mustRun(t, topo, allRelay("flood"), grid.C2(4, 4), Config{Trace: CollectTrace(&ev2)})
	if r1.String() != r2.String() {
		t.Errorf("results differ:\n%v\n%v", r1, r2)
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("trace event %d differs: %v vs %v", i, ev1[i], ev2[i])
		}
	}
}

// Energy must equal the ledger formula and per-node energies must sum
// to the total.
func TestEnergyAccounting(t *testing.T) {
	topo := grid.NewMesh3D6(4, 4, 3)
	r := mustRun(t, topo, allRelay("flood"), grid.C3(2, 2, 2), Config{})
	sum := 0.0
	for _, e := range r.PerNodeEnergyJ {
		sum += e
	}
	if diff := sum - r.EnergyJ; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("per-node energy sum %g != total %g", sum, r.EnergyJ)
	}
}

// Flooding must eventually reach every node on every topology with the
// repair pass (the safety-net guarantee behind 100% reachability).
func TestFloodingReachesAllTopologies(t *testing.T) {
	topos := []grid.Topology{
		grid.NewMesh2D3(10, 8), grid.NewMesh2D4(10, 8),
		grid.NewMesh2D8(10, 8), grid.NewMesh3D6(5, 4, 4),
	}
	for _, topo := range topos {
		for _, srcIdx := range []int{0, topo.NumNodes() / 2, topo.NumNodes() - 1} {
			src := topo.At(srcIdx)
			r := mustRun(t, topo, allRelay("flood"), src, Config{})
			if !r.FullyReached() {
				t.Errorf("%v src %v: reached %d/%d", topo.Kind(), src, r.Reached, r.Total)
			}
		}
	}
}

// The trace must be causally ordered: slots never decrease.
func TestTraceMonotonic(t *testing.T) {
	topo := grid.NewMesh2D4(8, 8)
	var events []Event
	mustRun(t, topo, allRelay("flood"), grid.C2(1, 1), Config{Trace: CollectTrace(&events)})
	prev := 0
	for _, e := range events {
		if e.Slot < prev {
			t.Fatalf("trace went backwards: %v after slot %d", e, prev)
		}
		prev = e.Slot
	}
}

func TestEventString(t *testing.T) {
	e := Event{Slot: 12, Kind: EventDecode, Node: grid.C2(3, 4)}
	if got := e.String(); got != "slot 12: decode (3,4)" {
		t.Errorf("Event.String() = %q", got)
	}
	if EventKind(99).String() != "EventKind(99)" {
		t.Error("unknown event kind")
	}
	for k, w := range map[EventKind]string{
		EventTx: "tx", EventDuplicate: "dup", EventCollision: "collide", EventRepair: "repair",
	} {
		if k.String() != w {
			t.Errorf("EventKind %d = %q, want %q", int(k), k.String(), w)
		}
	}
}

// Validate must reject corrupted results (failure injection).
func TestValidateRejectsCorruption(t *testing.T) {
	topo := grid.NewMesh2D4(5, 5)
	model, pkt := radio.Default(), radio.CanonicalPacket()
	fresh := func() *Result {
		r, err := Run(topo, allRelay("flood"), grid.C2(3, 3), Config{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	corruptions := []struct {
		name string
		mod  func(r *Result)
	}{
		{"tx count", func(r *Result) { r.Tx++ }},
		{"rx count", func(r *Result) { r.Rx-- }},
		{"delay", func(r *Result) { r.Delay += 3 }},
		{"energy", func(r *Result) { r.EnergyJ *= 2 }},
		{"reached", func(r *Result) { r.Reached-- }},
		{"tx before decode", func(r *Result) {
			for i := range r.TxSlots {
				if i != topo.Index(r.Source) && len(r.TxSlots[i]) > 0 {
					r.TxSlots[i][0] = 0
					r.DecodeSlot[i] = 5
					break
				}
			}
		}},
		{"tx order", func(r *Result) {
			for i := range r.TxSlots {
				if len(r.TxSlots[i]) > 1 {
					r.TxSlots[i][1] = r.TxSlots[i][0]
					return
				}
			}
			// Fabricate a double transmission if none exists.
			r.TxSlots[0] = []int{0, 0}
			r.Tx++
			r.Rx += 2 * topo.Degree(topo.At(0))
		}},
	}
	for _, c := range corruptions {
		r := fresh()
		if err := r.Validate(topo, model, pkt); err != nil {
			t.Fatalf("fresh result invalid: %v", err)
		}
		c.mod(r)
		if err := r.Validate(topo, model, pkt); err == nil {
			t.Errorf("corruption %q not caught", c.name)
		}
	}
}

func TestResultHelpers(t *testing.T) {
	topo := grid.NewMesh2D4(6, 6)
	r := mustRun(t, topo, allRelay("flood"), grid.C2(3, 3), Config{})
	if r.RelayCount() == 0 || r.RelayCount() > r.Total {
		t.Errorf("RelayCount = %d", r.RelayCount())
	}
	if r.Reachability() != 1.0 {
		t.Errorf("Reachability = %g", r.Reachability())
	}
	if r.MaxNodeEnergyJ() <= 0 {
		t.Error("MaxNodeEnergyJ <= 0")
	}
	qs := r.EnergyQuantiles(0, 0.5, 1)
	if !(qs[0] <= qs[1] && qs[1] <= qs[2]) {
		t.Errorf("quantiles not ordered: %v", qs)
	}
	if qs[2] != r.MaxNodeEnergyJ() {
		t.Errorf("q1 = %g != max %g", qs[2], r.MaxNodeEnergyJ())
	}
	if got := r.EnergyQuantiles(-1, 2); got[0] != qs[0] || got[1] != qs[2] {
		t.Errorf("quantile clamping broken: %v", got)
	}
	if !strings.Contains(r.String(), "flood") {
		t.Errorf("String() = %q", r.String())
	}
	empty := &Result{}
	if empty.Reachability() != 0 {
		t.Error("empty reachability")
	}
	if got := empty.EnergyQuantiles(0.5); got[0] != 0 {
		t.Error("empty quantiles")
	}
}

// Property: for ANY relay predicate — here pseudo-random subsets of
// varying density — the planner either reaches every node or the
// unreached nodes genuinely have no decoded neighbor path (which
// cannot happen on a connected mesh). Validated results throughout.
func TestRandomRelaySetsAlwaysRepairable(t *testing.T) {
	topo := grid.NewMesh2D4(9, 7)
	for seed := uint64(1); seed <= 25; seed++ {
		seed := seed
		density := int(seed%10) + 1 // 10%..100%
		p := testProto{
			name: "random-relays",
			relay: func(_ grid.Topology, _, c grid.Coord) bool {
				z := uint64(c.X)<<32 ^ uint64(c.Y)<<16 ^ seed
				z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
				z = (z ^ (z >> 27)) * 0x94d049bb133111eb
				return int((z^(z>>31))%10) < density
			},
		}
		r := mustRun(t, topo, p, grid.C2(5, 4), Config{})
		if !r.FullyReached() {
			t.Fatalf("seed %d density %d: reached %d/%d", seed, density, r.Reached, r.Total)
		}
	}
}

// Property: random TxDelays never break the engine's contract either.
func TestRandomDelaysAlwaysValid(t *testing.T) {
	topo := grid.NewMesh2D8(8, 6)
	for seed := uint64(1); seed <= 10; seed++ {
		seed := seed
		p := testProto{
			name: "random-delays",
			delay: func(_ grid.Topology, _, c grid.Coord) int {
				z := uint64(c.X)*31 + uint64(c.Y)*17 + seed
				return 1 + int(z%5)
			},
		}
		r := mustRun(t, topo, p, grid.C2(4, 3), Config{})
		if !r.FullyReached() {
			t.Fatalf("seed %d: reached %d/%d", seed, r.Reached, r.Total)
		}
	}
}
