package sim

import (
	"slices"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/radio"
)

// Incremental delta propagation: RunDelta re-simulates only the dirty
// cone a batch of graph mutations casts over the previous round's
// cached schedule, and splices everything else verbatim.
//
// The cache (deltaCache) holds, per replay round of the previous run,
// the full per-node decode vector and the flattened per-node
// transmitter schedule, plus the final replay's reception counts and
// scalar counters and the repair injection plan. Each mutation since
// the capture (SetNodeDown, SetLinkDown/SetLinkUp) is recorded as a
// seed; RunDelta walks the affected (node, slot) events in slot
// order, comparing each node's inbound transmitter count and decode
// state under the cached and the mutated graph, and propagates decode
// transitions forward through the compiled relay plan. The walk's
// correctness rests on causality: relay delays and retransmit offsets
// are >= 1 by plan compilation, and repair injections fire strictly
// after their donor's decode, so every schedule change caused by a
// decode transition at slot d lands at slots > d — when slot s is
// processed, the belief transmitter sets for slot s are final.
//
// The delta path falls back to the full engine (re-capturing the
// cache) whenever its preconditions break: scalar configs (trace,
// channel loss) are never cached, a changed source runs plain, too
// many seeds or too many cone events cost more than a full run, and
// any structural divergence — different replay count, a repair plan
// the comparison can't match, the serialized-repair fallback, a slot
// past MaxSlots — aborts to the exact engine. Fallbacks are counted
// per reason (DeltaFallbacksByReason) so the hit rate is observable.

// fallbackReason enumerates why RunDelta declined the delta path.
type fallbackReason int

const (
	fbScalar fallbackReason = iota // trace or channel config: inherently full-run
	fbCold                         // no valid cache yet (first run, Reset, prior error)
	fbSource                       // requested source differs from the cached one
	fbSeeds                        // mutation seed set too large to beat a full run
	fbStructure                    // replay/plan structure diverged from the cache
	fbBudget                       // cone event budget exceeded
	fbCount
)

var fallbackNames = [fbCount]string{
	"scalar", "cold_cache", "source_changed", "seed_overflow", "structure", "event_budget",
}

// Delta tuning knobs. Vars, not consts, so tests can force the
// fallback paths at any size; production code never mutates them.
var (
	// deltaSeedDiv caps the accepted mutation seed count at
	// 64 + links/deltaSeedDiv; beyond it a full run is cheaper.
	deltaSeedDiv = 4
	// deltaEventFloor and deltaEventDiv cap the cone walk at
	// deltaEventFloor + v/deltaEventDiv events. The bound is
	// deliberately tight: per-event cone work costs more than per-node
	// engine work, so a cone past a small fraction of the mesh already
	// loses to the full run — the budget's job is to make that
	// discovery cheap, not to stretch the cone's viability.
	deltaEventFloor = 256
	deltaEventDiv   = 8
	// Overload latch: deltaOverloadLatch consecutive capacity
	// fallbacks (seed overflow or event budget) drop the cache and run
	// plain for a stretch of rounds — deltaSuppressMin at first,
	// doubling up to deltaSuppressMax while the overloads persist —
	// before re-capturing. Without it a churn rate that outruns the
	// cone every round would pay full-run plus snapshot cost forever.
	deltaOverloadLatch = 2
	deltaSuppressMin   = 32
	deltaSuppressMax   = 1024
)

// replaySnap is one replay round's cached artifacts: the decode vector
// and the per-node transmitter schedule (flattened: node i's sorted
// slots are txFlat[txOff[i]:txOff[i+1]]), the live decoded count, and
// how many entries of the injection plan this replay ran with.
type replaySnap struct {
	decode  []int32
	txOff   []int32 // v+1 offsets into txFlat
	txFlat  []int32
	reached int
	injEnd  int
}

// deltaCache is the session's memoized previous round plus the
// mutation seeds recorded since.
type deltaCache struct {
	valid    bool  // replay snapshots describe the last captured run
	resValid bool  // s.res still holds this cache's assembled bytes
	srcIdx   int32 // source the cache was captured for

	replays []replaySnap
	injPlan []injection // full repair plan (prefix per replay, injEnd)
	heard   []int32     // final replay's per-node reception counts
	tx      int         // final replay's scalar counters
	rx      int
	coll    int
	dup     int

	// Source-stability tracking: the source of the previous RunDelta
	// call. A request matching it twice in a row means the origin has
	// settled (static cells always; residual once the argmax sticks),
	// so a cache pointed elsewhere is worth re-capturing; a source that
	// changes every call (round-robin) is never worth a snapshot.
	lastReq    int32
	hasLastReq bool

	// Overload latch (see the deltaOverload* knobs): consecutive
	// capacity fallbacks, rounds of capture suppression left, the next
	// suppression length, and the reason the latch reports while
	// engaged. overloads and suppressLen reset on the next served
	// delta.
	overloads      int
	suppress       int
	suppressLen    int
	suppressReason fallbackReason

	// Mutation seeds since the capture. flipBits holds flip parity per
	// link id (a link toggled back is no net change); deathBits marks
	// nodes that died after the capture (distinguishing them from nodes
	// already dead in the cached graph). The lists may hold stale or
	// duplicate entries; consumers filter by the bits.
	recording bool
	flipBits  bitset
	flips     []int32
	deathBits bitset
	deaths    []int32
}

// row returns node n's cached transmitter slots in replay r.
func (c *deltaCache) row(r int, n int32) []int32 {
	sn := &c.replays[r]
	return sn.txFlat[sn.txOff[n]:sn.txOff[n+1]]
}

// clearSeeds forgets the recorded mutations (they are now reflected in
// the cache) and (re)sizes the seed bitsets.
func (c *deltaCache) clearSeeds(s *Session) {
	c.deathBits.sizeToBits(s.v)
	if s.links != nil {
		c.flipBits.sizeToBits(len(s.links))
	}
	c.deaths = c.deaths[:0]
	c.flips = c.flips[:0]
}

// captureReplay snapshots one completed schedule replay off the live
// engine. Invoked via the engine's onReplay hook, once per replay, in
// order; inj is the injection set the replay ran with, a prefix of the
// final plan, so overwriting injPlan each call leaves the full plan.
func (c *deltaCache) captureReplay(e *engine, inj []injection) {
	v := len(e.decode)
	if len(c.replays) < cap(c.replays) {
		c.replays = c.replays[:len(c.replays)+1]
	} else {
		c.replays = append(c.replays, replaySnap{})
	}
	sn := &c.replays[len(c.replays)-1]
	sn.decode = append(sn.decode[:0], e.decode...)
	if cap(sn.txOff) < v+1 {
		sn.txOff = make([]int32, v+1)
	}
	sn.txOff = sn.txOff[:v+1]
	sn.txFlat = sn.txFlat[:0]
	for i, row := range e.txSlots {
		sn.txOff[i] = int32(len(sn.txFlat))
		for _, st := range row {
			sn.txFlat = append(sn.txFlat, int32(st))
		}
	}
	sn.txOff[v] = int32(len(sn.txFlat))
	sn.reached = e.res.Reached
	sn.injEnd = len(inj)
	c.injPlan = append(c.injPlan[:0], inj...)
}

// deltaScratch is the cone walk's arena. Per-node belief state is
// epoch-marked (one epoch per replay per RunDelta) so a replay switch
// costs nothing; the event queue is a per-slot bucket array consumed
// in ascending slot order.
type deltaScratch struct {
	epoch uint64
	mark  []uint64 // per node: epoch<<32 | slot+1 of the last processed event

	dvEp      []uint64 // belief decode, valid when dvEp[n] == epoch
	dv        []int32
	dvTouched []int32

	txEp      []uint64 // belief tx schedule, valid when txEp[n] == epoch
	txLists   [][]int32
	txTouched []int32

	hEp      []uint64 // accumulated reception delta, valid when hEp[n] == epoch
	heardD   []int32
	hTouched []int32

	affQ    [][]int32 // event queue: affQ[slot] lists nodes to process
	affHi   int
	curSlot int
	events  int
	budget  int

	dRx, dColl, dDup int // final-replay counter deltas

	newInj     []injection // the re-planned injection list
	activeInj  int         // newInj prefix the current replay runs with
	diverged   bool        // newInj no longer matches the cached plan
	planDirty  []int32     // nodes whose injections differ from the cache
	cachedEnds []int       // cached per-replay injEnd, pre-commit values

	flipSeeds []int32
	tmp       []int32 // deltaComputeTx build buffer
	bOff      []int32 // commit's schedule rebuild double-buffer
	bFlat     []int32
	abort     fallbackReason

	srcIdx int32
	plan   *relayPlan
}

func (d *deltaScratch) sizeTo(v int) {
	if len(d.mark) >= v {
		return
	}
	d.mark = make([]uint64, v)
	d.dvEp = make([]uint64, v)
	d.dv = make([]int32, v)
	d.txEp = make([]uint64, v)
	d.txLists = make([][]int32, v)
	d.hEp = make([]uint64, v)
	d.heardD = make([]int32, v)
}

// flip toggles bit i; unset clears it.
func (b bitset) flip(i int32)  { b[i>>6] ^= 1 << (uint32(i) & 63) }
func (b bitset) unset(i int32) { b[i>>6] &^= 1 << (uint32(i) & 63) }

// noteDeath records a post-capture node death seed.
func (s *Session) noteDeath(i int32) {
	c := &s.dcache
	if !c.recording {
		return
	}
	if !c.deathBits.get(i) {
		c.deathBits.set(i)
		c.deaths = append(c.deaths, i)
	}
}

// noteFlip records a post-capture link state flip seed. Parity: a link
// toggled an even number of times is byte-identical to the cache and
// seeds nothing (the stale list entry is filtered by the bit).
func (s *Session) noteFlip(id int32) {
	c := &s.dcache
	if !c.recording {
		return
	}
	if len(c.flipBits)<<6 < len(s.links) {
		// The link table was built after the capture; no flips can have
		// been recorded yet, so sizing (which clears) is safe.
		c.flipBits.sizeToBits(len(s.links))
	}
	was := c.flipBits.get(id)
	c.flipBits.flip(id)
	if !was {
		c.flips = append(c.flips, id)
		if len(c.flips) > 2*(64+len(s.links)/deltaSeedDiv) {
			s.compactFlips()
		}
	}
}

// compactFlips drops stale parity entries (and duplicates) from the
// flip list. Seeds normally stay small because every successful
// RunDelta clears them; while the cache sits idle under a rotating
// source they only accumulate, and if the net flip set alone already
// exceeds the seed-overflow threshold the cache can never serve a
// delta again — drop it so recording cannot grow without bound.
func (s *Session) compactFlips() {
	c := &s.dcache
	w := 0
	for _, id := range c.flips {
		if c.flipBits.get(id) {
			c.flipBits.unset(id) // later duplicates see the bit cleared
			c.flips[w] = id
			w++
		}
	}
	c.flips = c.flips[:w]
	for _, id := range c.flips {
		c.flipBits.set(id)
	}
	if len(c.flips) > 64+len(s.links)/deltaSeedDiv {
		s.invalidateCache()
	}
}

// invalidateCache drops the delta cache and stops seed recording; the
// next RunDelta re-captures from a full run.
func (s *Session) invalidateCache() {
	s.dcache.valid = false
	s.dcache.resValid = false
	s.dcache.recording = false
}

// latchOverload counts one capacity fallback and reports whether the
// overload latch engaged: enough of them in a row that the session
// should stop re-capturing and run plain for a while. The counter and
// backoff reset when a delta is next served.
func (s *Session) latchOverload(reason fallbackReason) bool {
	c := &s.dcache
	c.overloads++
	if c.overloads < deltaOverloadLatch {
		return false
	}
	s.invalidateCache()
	if c.suppressLen < deltaSuppressMin {
		c.suppressLen = deltaSuppressMin
	} else if c.suppressLen < deltaSuppressMax {
		c.suppressLen *= 2
	}
	c.suppress = c.suppressLen
	c.suppressReason = reason
	return true
}

// DeltaStats reports how many RunDelta calls were served from the
// incremental cone (hits) versus any full-engine fallback.
func (s *Session) DeltaStats() (hits, fallbacks uint64) {
	var f uint64
	for _, x := range s.deltaFall {
		f += x
	}
	return s.deltaHits, f
}

// DeltaFallbacksByReason returns the nonzero fallback counters keyed
// by reason name (scalar, cold_cache, source_changed, seed_overflow,
// structure, event_budget).
func (s *Session) DeltaFallbacksByReason() map[string]uint64 {
	out := make(map[string]uint64)
	for i, x := range s.deltaFall {
		if x > 0 {
			out[fallbackNames[i]] = x
		}
	}
	return out
}

// RunDelta simulates one broadcast from src like Run, but re-simulates
// only the dirty cone the mutations since the previous round cast over
// the cached schedule, splicing the untouched remainder verbatim. The
// Result is byte-identical to Run's on the same session state — the
// differential tests lock every path — and is valid until the next
// Run/RunDelta, Reset, or mutation. When the delta preconditions do
// not hold (see fallbackReason) it transparently runs the full engine.
func (s *Session) RunDelta(src grid.Coord) (*Result, error) {
	if err := s.validateSource(src); err != nil {
		return nil, err
	}
	if s.cfg.Trace != nil || s.cfg.Channel != nil {
		// Inherently scalar configs: a trace must replay every event, a
		// lossy channel decorrelates the cached schedule. Never cached.
		s.deltaFall[fbScalar]++
		return s.runPlain(src)
	}
	s.ensureLinks()
	c := &s.dcache
	srcIdx := int32(s.topo.Index(src))
	// A first call counts as stable so static cells arm the cache on
	// round 1; after that, stability means the same source twice in a
	// row.
	stable := !c.hasLastReq || c.lastReq == srcIdx
	c.lastReq, c.hasLastReq = srcIdx, true
	if !c.valid {
		if c.suppress > 0 {
			// Overload latch engaged: the churn rate recently outran the
			// cone twice in a row, so re-capturing would only tax every
			// full run with snapshot cost. Run plain until the latch
			// expires, reporting the reason that tripped it.
			c.suppress--
			s.deltaFall[c.suppressReason]++
			return s.runPlain(src)
		}
		s.deltaFall[fbCold]++
		if !stable {
			// The source changes every call (round-robin rotation): a
			// snapshot would be stale before it is ever consulted.
			return s.runPlain(src)
		}
		return s.runFullCapture(src, srcIdx)
	}
	if c.srcIdx != srcIdx {
		s.deltaFall[fbSource]++
		if stable {
			// The origin settled somewhere new (e.g. residual rotation's
			// argmax moved and stuck): re-point the cache at it.
			return s.runFullCapture(src, srcIdx)
		}
		// Still rotating: run plain but keep the cache — the delta path
		// re-engages if the cached source comes back, and compactFlips
		// bounds the seed recording in the meantime.
		return s.runPlain(src)
	}
	d := &s.dx
	d.flipSeeds = d.flipSeeds[:0]
	for _, id := range c.flips {
		if c.flipBits.get(id) {
			d.flipSeeds = append(d.flipSeeds, id)
		}
	}
	slices.Sort(d.flipSeeds)
	d.flipSeeds = slices.Compact(d.flipSeeds)
	if len(c.deaths)+len(d.flipSeeds) > 64+len(s.links)/deltaSeedDiv {
		s.deltaFall[fbSeeds]++
		if s.latchOverload(fbSeeds) {
			return s.runPlain(src)
		}
		return s.runFullCapture(src, srcIdx)
	}
	if len(c.deaths) == 0 && len(d.flipSeeds) == 0 && c.resValid {
		// Graph byte-identical to the cached round and s.res still holds
		// the assembled bytes: the previous Result IS this round's.
		s.deltaHits++
		c.overloads, c.suppressLen = 0, 0
		c.clearSeeds(s)
		return &s.res, nil
	}
	if res, ok := s.runDeltaCone(src, srcIdx); ok {
		s.deltaHits++
		c.overloads, c.suppressLen = 0, 0
		return res, nil
	}
	s.deltaFall[d.abort]++
	if d.abort == fbBudget && s.latchOverload(fbBudget) {
		return s.runPlain(src)
	}
	return s.runFullCapture(src, srcIdx)
}

// runFullCapture runs the full engine and snapshots every replay into
// the delta cache, arming the incremental path for the next round.
func (s *Session) runFullCapture(src grid.Coord, srcIdx int32) (*Result, error) {
	c := &s.dcache
	s.invalidateCache()
	c.replays = c.replays[:0]
	pl := s.planOf(src, srcIdx)
	s.dcache.resValid = false
	e := getEngine(s.topo, s.proto, pl, src, s.cfg, nil, s.adj, s.runDown())
	defer e.release()
	e.onReplay = func(inj []injection) { c.captureReplay(e, inj) }
	if err := e.runSchedule(); err != nil {
		return nil, err
	}
	e.onReplay = nil
	res := e.finishInto(&s.res, &s.arena)
	e.flushTrace()
	if !e.usedAppendRepair && len(c.replays) > 0 {
		c.heard = append(c.heard[:0], e.heard...)
		c.tx, c.rx, c.coll, c.dup = res.Tx, res.Rx, res.Collisions, res.Duplicates
		c.srcIdx = srcIdx
		c.valid, c.resValid, c.recording = true, true, true
		c.clearSeeds(s)
	}
	return res, nil
}

// runDeltaCone walks the dirty cone across every cached replay and, on
// success, commits the updated snapshots and assembles the Result from
// the cache. On abort (reason in s.dx.abort) the cache is invalidated
// — earlier replays may already hold committed updates — and the
// caller re-captures from a full run.
func (s *Session) runDeltaCone(src grid.Coord, srcIdx int32) (*Result, bool) {
	c := &s.dcache
	d := &s.dx
	v := s.v
	R := len(c.replays)
	total := v - s.downN
	d.sizeTo(v)
	d.budget = deltaEventFloor + v/deltaEventDiv
	d.events = 0
	d.newInj = d.newInj[:0]
	d.diverged = false
	d.planDirty = d.planDirty[:0]
	d.srcIdx = srcIdx
	d.plan = s.planOf(src, srcIdx)
	d.cachedEnds = d.cachedEnds[:0]
	for i := range c.replays {
		d.cachedEnds = append(d.cachedEnds, c.replays[i].injEnd)
	}

	var e *engine
	defer func() {
		if e != nil {
			e.release()
		}
	}()
	fail := func(reason fallbackReason) (*Result, bool) {
		d.abort = reason
		c.valid = false
		c.resValid = false
		// An abort can leave undrained event buckets (the drain truncates
		// only the buckets it finishes); clear them all so a later cone
		// walk, after re-capture, starts from an empty queue instead of
		// processing stale events against its budget.
		for i := range d.affQ {
			d.affQ[i] = d.affQ[i][:0]
		}
		return nil, false
	}

	for r := 0; r < R; r++ {
		d.epoch++
		d.curSlot = -1
		d.affHi = -1
		d.dvTouched = d.dvTouched[:0]
		d.txTouched = d.txTouched[:0]
		d.hTouched = d.hTouched[:0]
		d.dRx, d.dColl, d.dDup = 0, 0, 0
		d.activeInj = len(d.newInj)

		// Seed the cone: every replay re-derives the same graph seeds
		// (each cached replay ran on the old graph), plus any injection
		// divergence carried over from the previous replay's planning.
		for _, id := range d.flipSeeds {
			lk := s.links[id]
			for _, st := range c.row(r, lk.A) {
				s.deltaEnqueue(lk.B, int(st))
			}
			for _, st := range c.row(r, lk.B) {
				s.deltaEnqueue(lk.A, int(st))
			}
		}
		for _, n := range c.deaths {
			// The dead node's belief: never decodes, never transmits
			// (deltaSetDecode's markTx empties its schedule and fans the
			// removals out to its neighbors)...
			if !s.deltaSetDecode(r, n, -1) {
				return fail(d.abort)
			}
			// ...and its cached receptions vanish: process every slot a
			// pristine neighbor transmitted in, so the counters drop its
			// old receptions and outcome classes.
			for _, nb := range s.full[n] {
				for _, st := range c.row(r, nb) {
					s.deltaEnqueue(n, int(st))
				}
			}
		}
		for _, n := range d.planDirty {
			if !s.deltaMarkTx(r, n) {
				return fail(d.abort)
			}
		}

		if !s.deltaDrain(r) {
			return fail(d.abort)
		}
		s.deltaCommitReplay(r)

		// Termination decision, mirroring runSchedule exactly.
		sn := &c.replays[r]
		missing := sn.reached < total
		done := s.cfg.DisableRepair || !missing
		prevLen := len(d.newInj)
		if !done {
			if r >= s.cfg.MaxPlanRounds {
				// The full engine would take the serialized appendRepair
				// fallback here, which the cache cannot represent.
				return fail(fbStructure)
			}
			if e == nil {
				e = getEngine(s.topo, s.proto, d.plan, src, s.cfg, nil, s.adj, s.runDown())
			}
			s.deltaLoadEngine(e, r)
			if e.planInjections(&d.newInj) == 0 {
				done = true // unreached nodes are disconnected from the source
			}
		}
		if done != (r == R-1) {
			// The new run terminates earlier or later than the cached
			// one: replay structure changed, splicing is off the table.
			return fail(fbStructure)
		}
		if done {
			break
		}
		newRound := d.newInj[prevLen:]
		for _, in := range newRound {
			if in.slot > s.cfg.MaxSlots {
				// The full path errors with a runaway schedule here;
				// abort so the re-capture reproduces that exact error.
				return fail(fbStructure)
			}
		}
		d.planDirty = d.planDirty[:0]
		oldRound := c.injPlan[d.cachedEnds[r]:d.cachedEnds[r+1]]
		if !d.diverged && slices.Equal(newRound, oldRound) {
			continue // identical plans: next replay seeds from the graph alone
		}
		d.diverged = true
		s.deltaPlanDirty(d.newInj, c.injPlan[:d.cachedEnds[r+1]])
	}

	if d.diverged {
		c.injPlan = append(c.injPlan[:0], d.newInj...)
	}
	res := s.assembleDelta(src, srcIdx)
	c.resValid = true
	c.clearSeeds(s)
	return res, true
}

// deltaPlanDirty fills d.planDirty with every node whose injection
// multiset differs between the new and the cached plan. Plans are tiny
// relative to the mesh; the quadratic membership scan is fine.
func (s *Session) deltaPlanDirty(newList, oldList []injection) {
	d := &s.dx
	count := func(list []injection, in injection) int {
		n := 0
		for _, x := range list {
			if x == in {
				n++
			}
		}
		return n
	}
	for _, in := range newList {
		if count(newList, in) != count(oldList, in) {
			d.planDirty = append(d.planDirty, in.node)
		}
	}
	for _, in := range oldList {
		if count(newList, in) != count(oldList, in) {
			d.planDirty = append(d.planDirty, in.node)
		}
	}
	slices.Sort(d.planDirty)
	d.planDirty = slices.Compact(d.planDirty)
}

// deltaEnqueue queues node n for re-examination at slot.
func (s *Session) deltaEnqueue(n int32, slot int) {
	d := &s.dx
	for slot >= len(d.affQ) {
		d.affQ = append(d.affQ, nil)
	}
	d.affQ[slot] = append(d.affQ[slot], n)
	if slot > d.affHi {
		d.affHi = slot
	}
}

// deltaDrain consumes the event queue in ascending slot order. Events
// only ever enqueue strictly-later slots (causality), so each bucket
// is final when reached and within-bucket order is immaterial: every
// event reads only state that is final for its slot.
func (s *Session) deltaDrain(r int) bool {
	d := &s.dx
	for slot := 0; slot <= d.affHi; slot++ {
		bucket := d.affQ[slot]
		if len(bucket) == 0 {
			continue
		}
		d.curSlot = slot
		for _, n := range bucket {
			if !s.deltaEvent(r, n, slot) {
				return false
			}
		}
		d.affQ[slot] = bucket[:0]
	}
	return true
}

// deltaEvent re-examines node n at slot: recomputes its inbound
// transmitter count under the cached and the mutated graph, patches
// the outcome-class counters (collision / duplicate / reception), and
// propagates decode transitions.
func (s *Session) deltaEvent(r int, n int32, slot int) bool {
	d := &s.dx
	c := &s.dcache
	key := d.epoch<<32 | uint64(slot+1)
	if d.mark[n] == key {
		return true // (n, slot) already processed this replay
	}
	d.mark[n] = key
	d.events++
	if d.events > d.budget {
		d.abort = fbBudget
		return false
	}

	newDead := s.down != nil && s.down[n]
	if newDead && !c.deathBits.get(n) {
		return true // dead in the cached graph too: no activity either way
	}
	sn := &c.replays[r]
	decC := sn.decode[n]

	// One pass over the pristine row counts inbound transmitters at
	// this slot under both graphs. Old graph: current link/node state
	// with the recorded seeds undone (flip parity, post-capture
	// deaths), transmitters from the cached schedule. New graph:
	// current state, transmitters from the belief schedule.
	hc, hn := 0, 0
	rl := s.rowLink[n]
	for k, nb := range s.full[n] {
		lid := rl[k]
		nbDead := s.down != nil && s.down[nb]
		if !newDead && !nbDead && !s.linkDown[lid] && s.beliefTx(r, nb, slot) {
			hn++
		}
		nbOldDead := nbDead && !c.deathBits.get(nb)
		oldLinkDown := s.linkDown[lid] != c.flipBits.get(lid)
		if !nbOldDead && !oldLinkDown && slotIn(c.row(r, nb), slot) {
			hc++
		}
	}

	if dr := hn - hc; dr != 0 {
		d.dRx += dr
		if d.hEp[n] != d.epoch {
			d.hEp[n] = d.epoch
			d.heardD[n] = 0
			d.hTouched = append(d.hTouched, n)
		}
		d.heardD[n] += int32(dr)
	}

	// Outcome-class counter patches: remove the cached slot's class,
	// add the new one. Decodes are not a counter — Reached is patched
	// from the decode diffs at commit.
	coveredC := decC >= 0 && int(decC) < slot
	switch {
	case hc >= 2:
		d.dColl--
	case hc == 1 && coveredC:
		d.dDup--
	}
	bel := decC
	if d.dvEp[n] == d.epoch {
		bel = d.dv[n]
	}
	coveredN := bel >= 0 && int(bel) < slot
	if !newDead {
		switch {
		case hn >= 2:
			d.dColl++
		case hn == 1 && coveredN:
			d.dDup++
		}
	}

	wasHere := decC == int32(slot)
	isHere := !newDead && hn == 1 && !coveredN
	if isHere && !wasHere {
		if !s.deltaSetDecode(r, n, int32(slot)) {
			return false
		}
		if decC > int32(slot) {
			// The cached later first-decode is now a duplicate; process
			// that slot so its class flips.
			s.deltaEnqueue(n, int(decC))
		}
	} else if wasHere && !isHere && bel == int32(slot) {
		// The cached first-decode here is destroyed and nothing earlier
		// replaced it: n is now undecoded, and any cached later
		// reception — recorded as a duplicate — may become its decode.
		if !s.deltaSetDecode(r, n, -1) {
			return false
		}
		for _, nb := range s.full[n] {
			for _, st := range c.row(r, nb) {
				if int(st) > slot {
					s.deltaEnqueue(n, int(st))
				}
			}
		}
	}
	return true
}

// deltaSetDecode updates n's belief decode slot and recomputes its
// transmitter schedule (decode drives the relay plan and injection
// firing).
func (s *Session) deltaSetDecode(r int, n int32, val int32) bool {
	d := &s.dx
	if d.dvEp[n] != d.epoch {
		d.dvEp[n] = d.epoch
		d.dvTouched = append(d.dvTouched, n)
	}
	d.dv[n] = val
	return s.deltaMarkTx(r, n)
}

// deltaMarkTx recomputes node n's belief transmitter schedule and fans
// every differing slot out to n's pristine neighbors (a superset of
// the affected receivers under either graph; spurious events are
// no-ops). Aborts on a causality violation (a schedule change at or
// before the current slot) or a slot past MaxSlots — both mean the
// full engine must decide.
func (s *Session) deltaMarkTx(r int, n int32) bool {
	d := &s.dx
	var prev []int32
	if d.txEp[n] == d.epoch {
		prev = d.txLists[n]
	} else {
		prev = s.dcache.row(r, n)
	}
	cur := s.deltaComputeTx(r, n, d.tmp[:0])
	if slices.Equal(prev, cur) {
		d.tmp = cur[:0]
		return true
	}
	i, j := 0, 0
	for i < len(prev) || j < len(cur) {
		if i < len(prev) && j < len(cur) && prev[i] == cur[j] {
			i, j = i+1, j+1
			continue
		}
		var slot int32
		if j >= len(cur) || (i < len(prev) && prev[i] < cur[j]) {
			slot = prev[i]
			i++
		} else {
			slot = cur[j]
			j++
		}
		if int(slot) <= d.curSlot || int(slot) > s.cfg.MaxSlots {
			d.tmp = cur[:0]
			d.abort = fbStructure
			return false
		}
		for _, nb := range s.full[n] {
			s.deltaEnqueue(nb, int(slot))
		}
	}
	if d.txEp[n] != d.epoch {
		d.txEp[n] = d.epoch
		d.txTouched = append(d.txTouched, n)
	}
	d.txLists[n] = append(d.txLists[n][:0], cur...)
	d.tmp = cur[:0]
	return true
}

// deltaComputeTx builds node n's transmitter schedule under the
// current belief: the compiled plan's source/relay transmissions plus
// the replay's injections that fire (donor decoded strictly before the
// injection slot), sorted and deduplicated exactly like the engine's
// per-slot dedupe leaves them.
func (s *Session) deltaComputeTx(r int, n int32, buf []int32) []int32 {
	d := &s.dx
	if s.down != nil && s.down[n] {
		return buf
	}
	bel := s.dcache.replays[r].decode[n]
	if d.dvEp[n] == d.epoch {
		bel = d.dv[n]
	}
	if n == d.srcIdx {
		buf = append(buf, SourceTx)
		for _, off := range d.plan.retransmits(n) {
			buf = append(buf, int32(SourceTx+off))
		}
	} else if bel >= 0 && d.plan.relay.get(n) {
		first := bel + d.plan.delay[n]
		buf = append(buf, first)
		for _, off := range d.plan.retransmits(n) {
			buf = append(buf, first+int32(off))
		}
	}
	for _, in := range d.newInj[:d.activeInj] {
		if in.node == n && bel >= 0 && int(bel) < in.slot {
			buf = append(buf, int32(in.slot))
		}
	}
	slices.Sort(buf)
	return slices.Compact(buf)
}

// beliefTx reports whether node n transmits at slot under the current
// belief (falling back to the cached schedule when untouched).
func (s *Session) beliefTx(r int, n int32, slot int) bool {
	d := &s.dx
	if d.txEp[n] == d.epoch {
		return slotIn(d.txLists[n], slot)
	}
	return slotIn(s.dcache.row(r, n), slot)
}

// slotIn reports membership in a sorted slot row.
func slotIn(row []int32, slot int) bool {
	for _, st := range row {
		if int(st) == slot {
			return true
		}
		if int(st) > slot {
			return false
		}
	}
	return false
}

// deltaCommitReplay folds the replay's belief diffs into its cached
// snapshot: decode values and the reached count, the transmitter
// schedule (patched in place when row lengths are unchanged, rebuilt
// through a double buffer otherwise), and — final replay only — the
// scalar counters and reception counts the Result is assembled from.
func (s *Session) deltaCommitReplay(r int) {
	d := &s.dx
	c := &s.dcache
	sn := &c.replays[r]
	final := r == len(c.replays)-1
	for _, n := range d.dvTouched {
		old, nv := sn.decode[n], d.dv[n]
		if old == nv {
			continue
		}
		if old >= 0 {
			sn.reached--
		}
		if nv >= 0 {
			sn.reached++
		}
		sn.decode[n] = nv
	}
	if len(d.txTouched) > 0 {
		dTx := 0
		same := true
		for _, n := range d.txTouched {
			diff := len(d.txLists[n]) - int(sn.txOff[n+1]-sn.txOff[n])
			dTx += diff
			if diff != 0 {
				same = false
			}
		}
		if same {
			for _, n := range d.txTouched {
				copy(sn.txFlat[sn.txOff[n]:sn.txOff[n+1]], d.txLists[n])
			}
		} else {
			v := s.v
			if cap(d.bOff) < v+1 {
				d.bOff = make([]int32, v+1)
			}
			off := d.bOff[:v+1]
			flat := d.bFlat[:0]
			for i := 0; i < v; i++ {
				off[i] = int32(len(flat))
				if d.txEp[i] == d.epoch {
					flat = append(flat, d.txLists[i]...)
				} else {
					flat = append(flat, sn.txFlat[sn.txOff[i]:sn.txOff[i+1]]...)
				}
			}
			off[v] = int32(len(flat))
			d.bOff, sn.txOff = sn.txOff[:0], off
			d.bFlat, sn.txFlat = sn.txFlat[:0], flat
		}
		if final {
			c.tx += dTx
		}
	}
	if final {
		c.rx += d.dRx
		c.coll += d.dColl
		c.dup += d.dDup
		for _, n := range d.hTouched {
			c.heard[n] += d.heardD[n]
		}
	}
	sn.injEnd = d.activeInj
}

// deltaLoadEngine materializes a replay snapshot into a bound engine
// so the real planInjections runs on it — the plan the full path would
// compute, by construction, not by reimplementation.
func (s *Session) deltaLoadEngine(e *engine, r int) {
	sn := &s.dcache.replays[r]
	v := s.v
	copy(e.decode, sn.decode)
	e.covered.sizeToBits(v)
	for i := int32(v); i < int32(len(e.covered)<<6); i++ {
		e.covered.set(i)
	}
	for i, dec := range sn.decode {
		if dec >= 0 {
			e.covered.set(int32(i))
		}
	}
	for i := 0; i < v; i++ {
		dst := e.txSlots[i][:0]
		for _, st := range sn.txFlat[sn.txOff[i]:sn.txOff[i+1]] {
			dst = append(dst, int(st))
		}
		e.txSlots[i] = dst
	}
}

// assembleDelta writes the Result from the committed cache, mirroring
// finishInto byte for byte (same arena reuse, same nil-row and
// widening conventions, same ledger arithmetic).
func (s *Session) assembleDelta(src grid.Coord, srcIdx int32) *Result {
	c := &s.dcache
	fin := &c.replays[len(c.replays)-1]
	v := s.v
	repairs := 0
	for _, in := range c.injPlan[:fin.injEnd] {
		if dec := fin.decode[in.node]; dec >= 0 && int(dec) < in.slot {
			repairs++
		}
	}
	r := &s.res
	a := &s.arena
	*r = Result{
		Kind:       s.topo.Kind(),
		Source:     src,
		Protocol:   s.proto.Name(),
		Tx:         c.tx,
		Rx:         c.rx,
		Reached:    fin.reached,
		Total:      v - s.downN,
		Down:       s.downN,
		Collisions: c.coll,
		Duplicates: c.dup,
		Repairs:    repairs,
	}
	for i, dec := range fin.decode {
		if i != int(srcIdx) && int(dec) > r.Delay {
			r.Delay = int(dec)
		}
	}
	etx := s.cfg.Model.TxEnergyJ(s.cfg.Packet.Bits, s.cfg.Packet.NeighborDistM)
	erx := s.cfg.Model.RxEnergyJ(s.cfg.Packet.Bits)
	if cap(a.energy) < v {
		a.energy = make([]float64, v)
	}
	r.PerNodeEnergyJ = a.energy[:v]
	for i := range r.PerNodeEnergyJ {
		n := int(fin.txOff[i+1] - fin.txOff[i])
		r.PerNodeEnergyJ[i] = float64(n)*etx + float64(c.heard[i])*erx
	}
	totalTx := int(fin.txOff[v])
	if cap(a.txSlots) < v {
		a.txSlots = make([][]int, v)
	}
	r.TxSlots = a.txSlots[:v]
	if cap(a.flat) < totalTx {
		a.flat = make([]int, 0, totalTx)
	}
	flat := a.flat[:0]
	for i := 0; i < v; i++ {
		row := fin.txFlat[fin.txOff[i]:fin.txOff[i+1]]
		if len(row) == 0 {
			r.TxSlots[i] = nil // keep nil rows nil, like finishInto
			continue
		}
		for _, st := range row {
			flat = append(flat, int(st))
		}
		r.TxSlots[i] = flat[len(flat)-len(row) : len(flat) : len(flat)]
	}
	a.flat = flat[:0]
	if cap(a.decode) < v {
		a.decode = make([]int, v)
	}
	r.DecodeSlot = a.decode[:v]
	for i, dec := range fin.decode {
		r.DecodeSlot[i] = int(dec)
	}
	ledger := radio.NewLedger(s.cfg.Model, s.cfg.Packet)
	ledger.AddTx(r.Tx)
	ledger.AddRx(r.Rx)
	r.EnergyJ = ledger.TotalJ()
	r.downMask = s.runDown()
	return r
}
