package sim

import (
	"math/bits"
	"slices"
)

// slotQueue is a slot-indexed transmission schedule: bucket b holds
// the nodes scheduled to transmit in absolute slot b. It replaces the
// engine's former map[int][]int32 schedule on the hot path — draining
// a slot is an array index instead of a hash lookup plus delete, and
// bucket backing arrays are retained across resets so a pooled engine
// schedules with no steady-state allocation.
//
// Slots are clamped by the engine before they reach add (see
// engine.schedule), so the bucket array never grows past
// Config.MaxSlots+1.
type slotQueue struct {
	buckets [][]int32
	hi      int // high-water: buckets[0:hi] may hold entries
}

// add appends node to the slot's bucket, growing the bucket array on
// demand (header growth is amortized; bucket capacity is retained
// across resets).
func (q *slotQueue) add(slot int, node int32) {
	for slot >= len(q.buckets) {
		q.buckets = append(q.buckets, nil)
	}
	q.buckets[slot] = append(q.buckets[slot], node)
	if slot+1 > q.hi {
		q.hi = slot + 1
	}
}

// take returns the slot's bucket (nil when empty) and clears it. The
// returned slice aliases the bucket's backing array; the engine may
// extend or reorder it in place because nothing schedules into a slot
// that is currently being drained — every schedule targets a strictly
// later slot.
func (q *slotQueue) take(slot int) []int32 {
	if slot >= len(q.buckets) {
		return nil
	}
	b := q.buckets[slot]
	q.buckets[slot] = b[:0]
	if len(b) == 0 {
		return nil
	}
	return b
}

// reset empties every bucket up to the high-water mark, retaining all
// capacity. After a clean drain the buckets are already empty (take
// clears as it goes); reset also covers error and abandoned-round
// paths.
func (q *slotQueue) reset() {
	n := q.hi
	if n > len(q.buckets) {
		n = len(q.buckets)
	}
	for i := 0; i < n; i++ {
		q.buckets[i] = q.buckets[i][:0]
	}
	q.hi = 0
}

// dedupe sorts and removes duplicate transmitters (a node transmits at
// most once per slot even if scheduled twice). Buckets are usually
// already sorted by construction — nodes decode, and therefore
// schedule, in ascending first-hit order per slot — so the common case
// is a single IsSorted scan; slices.Sort is the fallback and, unlike
// the former sort.Slice, allocates no closure.
func dedupe(txs []int32) []int32 {
	if !slices.IsSorted(txs) {
		slices.Sort(txs)
	}
	return slices.Compact(txs)
}

// dedupeTxs is the engine's dedupe: for large buckets — wide wavefront
// slots, churn-damaged meshes with many planned repairs — it trades
// the comparison sort for one pass through a node-indexed bitset and
// an ascending bit extraction, which yields exactly the same
// sorted-unique list in O(n + touched words). Small buckets keep the
// insertion-sort path, which wins below the crossover. The scratch
// bitset is all-zero between calls: extraction clears each word as it
// reads it.
func (e *engine) dedupeTxs(txs []int32) []int32 {
	const bitsetMin = 24
	if len(txs) < bitsetMin {
		return dedupe(txs)
	}
	if words := (len(e.decode) + 63) >> 6; len(e.dedupBits) < words {
		e.dedupBits.sizeToBits(len(e.decode))
	}
	b := e.dedupBits
	lo, hi := txs[0]>>6, txs[0]>>6
	for _, v := range txs {
		if w := v >> 6; w < lo {
			lo = w
		} else if w > hi {
			hi = w
		}
		b.set(v)
	}
	out := txs[:0] // contents fully transferred to the bitset above
	for w := lo; w <= hi; w++ {
		word := b[w]
		if word == 0 {
			continue
		}
		b[w] = 0
		base := w << 6
		for word != 0 {
			out = append(out, base+int32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return out
}
