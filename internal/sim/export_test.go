package sim

import "wsnbcast/internal/grid"

// Test-only knobs for the large-grid engine thresholds. The engine
// selects its neighbor source and parallelism by node count; forcing
// the thresholds lets the differential tests drive every path — the
// implicit indexer and the sharded step on tiny meshes, the
// materialized small-grid path on huge ones — against the same frozen
// oracle. Each setter returns a restore function for defer; the knobs
// are not safe to change concurrently with Runs.

// SetLargeGridThresholdForTest overrides largeGridNodes: 0 forces the
// implicit path (and cache gating) at every size, a huge value forces
// the materialized small-grid path everywhere.
func SetLargeGridThresholdForTest(n int) (restore func()) {
	old := largeGridNodes
	largeGridNodes = n
	return func() { largeGridNodes = old }
}

// SetParallelMinTxsForTest overrides the minimum per-slot transmitter
// count for the sharded step, so tiny meshes exercise shard merging.
func SetParallelMinTxsForTest(n int) (restore func()) {
	old := parallelMinTxs
	parallelMinTxs = n
	return func() { parallelMinTxs = old }
}

// AdjCacheHas reports whether a materialized adjacency is cached for
// t's (kind, size) — the large-grid tests assert it stays absent.
func AdjCacheHas(t grid.Topology) bool {
	m, n, l := t.Size()
	_, ok := adjCache.Load(adjKey{t.Kind(), m, n, l})
	return ok
}

// PlanCacheHas reports whether the unbounded small-grid plan cache
// holds an entry for (t, p, src) — large grids must use the bounded
// LRU instead.
func PlanCacheHas(t grid.Topology, p Protocol, src grid.Coord) bool {
	m, n, l := t.Size()
	_, ok := planCache.Load(planKey{kind: t.Kind(), m: m, n: n, l: l, src: t.Index(src), proto: p})
	return ok
}

// SetDeltaSeedDivForTest overrides the delta path's seed-overflow
// divisor (seed cap = 64 + links/div): a huge value forces the
// seed_overflow fallback on any mutation batch at small sizes.
// Note the cap formula: raising div SHRINKS the cap.
func SetDeltaSeedDivForTest(n int) (restore func()) {
	old := deltaSeedDiv
	deltaSeedDiv = n
	return func() { deltaSeedDiv = old }
}

// SetDeltaEventBudgetForTest overrides the cone-walk event budget
// (budget = floor + v/div). A deeply negative floor forces the
// event_budget fallback on the first event.
func SetDeltaEventBudgetForTest(floor, div int) (restore func()) {
	oldFloor, oldDiv := deltaEventFloor, deltaEventDiv
	deltaEventFloor, deltaEventDiv = floor, div
	return func() { deltaEventFloor, deltaEventDiv = oldFloor, oldDiv }
}

// DeltaCacheValidForTest reports whether the session currently holds
// an armed delta cache (replay snapshots it would splice from).
func (s *Session) DeltaCacheValidForTest() bool { return s.dcache.valid }

// SetDeltaSuppressForTest shrinks the overload latch's suppression
// window so tests can watch it engage, expire, and back off without
// hundreds of rounds.
func SetDeltaSuppressForTest(min, max int) (restore func()) {
	oldMin, oldMax := deltaSuppressMin, deltaSuppressMax
	deltaSuppressMin, deltaSuppressMax = min, max
	return func() { deltaSuppressMin, deltaSuppressMax = oldMin, oldMax }
}

// DeltaSuppressedForTest reports whether the overload latch is
// currently holding the session on the plain path.
func (s *Session) DeltaSuppressedForTest() bool { return s.dcache.suppress > 0 }

// EffectiveWorkersForTest exposes the Config.Workers resolution rule.
func EffectiveWorkersForTest(cfgWorkers, v int) int { return effectiveWorkers(cfgWorkers, v) }

// RunLoopForBenchmark drives the full schedule/repair loop but skips
// Result assembly, isolating the engine's steady-state allocation: the
// per-node DecodeSlot/TxSlots/PerNodeEnergyJ arrays a real Run must
// hand to the caller dominate whole-Run B/op at large N and would mask
// the arena's O(N)-bit claim.
func RunLoopForBenchmark(t grid.Topology, p Protocol, src grid.Coord, cfg Config) error {
	e, err := runLoop(t, p, src, cfg)
	if e != nil {
		e.release()
	}
	return err
}
