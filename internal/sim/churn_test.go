package sim

import "testing"

// The churn chain must be domain-separated from every other draw
// family: a lifetime study runs link churn and per-slot loss under the
// same seed, and a shared uniform would couple "does the link exist
// this round" with "does this copy arrive" in a way no threshold
// comparison could untangle.

func TestChurnDomainConstantsDistinct(t *testing.T) {
	domains := map[string]uint64{
		"loss":    domainLoss,
		"failure": domainFailure,
		"rep":     domainRep,
		"churn":   domainChurn,
	}
	seen := make(map[uint64]string)
	for name, d := range domains {
		if prev, dup := seen[d]; dup {
			t.Fatalf("domain constants %q and %q collide at %#x", prev, name, d)
		}
		seen[d] = name
	}
}

func TestChurnUnitRange(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		for round := 0; round < 64; round++ {
			for link := int32(0); link < 64; link++ {
				u := ChurnUnit(seed, round, link)
				if u < 0 || u >= 1 {
					t.Fatalf("ChurnUnit(%d, %d, %d) = %g outside [0, 1)", seed, round, link, u)
				}
				if u != ChurnUnit(seed, round, link) {
					t.Fatalf("ChurnUnit(%d, %d, %d) not deterministic", seed, round, link)
				}
			}
		}
	}
}

// FuzzChurnDomainDisjoint pins the keyspace separation alongside
// FuzzLaneLossMask: for any coordinates the fuzzer invents, the churn
// draw never equals the loss or failure draw of the same seed. The
// chains share their absorbed prefix (seed), then absorb distinct
// domain words; mix64 is invertible, so distinct domains give distinct
// chain states from that word on, and every draw downstream differs —
// this fuzz target is the empirical check of that argument.
func FuzzChurnDomainDisjoint(f *testing.F) {
	f.Add(uint64(1), 0, int32(0), int32(1))
	f.Add(uint64(42), 7, int32(12), int32(13))
	f.Add(uint64(0xdeadbeef), 900, int32(511), int32(0))
	f.Fuzz(func(t *testing.T, seed uint64, round int, link, rx int32) {
		churn := keyedUint64(seed, domainChurn, uint64(round), uint64(uint32(link)))
		// Loss draws absorb (slot, tx, rx); line the first two words up
		// with the churn coordinates so a domain collision would surface
		// as equal prefixes before rx is even absorbed.
		lossPrefix := keyedUint64(seed, domainLoss, uint64(round), uint64(uint32(link)))
		if churn == lossPrefix {
			t.Fatalf("churn and loss chains collide at seed %#x round %d link %d: %#x",
				seed, round, link, churn)
		}
		loss := keyedUint64(seed, domainLoss, uint64(round), uint64(uint32(link)), uint64(uint32(rx)))
		if churn == loss {
			t.Fatalf("churn draw equals full loss draw at seed %#x round %d link %d rx %d",
				seed, round, link, rx)
		}
		fail := keyedUint64(seed, domainFailure, uint64(round), uint64(uint32(link)))
		if churn == fail {
			t.Fatalf("churn and failure chains collide at seed %#x round %d link %d: %#x",
				seed, round, link, churn)
		}
	})
}
