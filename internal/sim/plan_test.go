package sim

import (
	"sync"
	"testing"

	"wsnbcast/internal/grid"
)

// planTestProto is a comparable value protocol with distinguishable
// per-node answers, including out-of-range values the compiler must
// normalize (delay clamped to >= 1, offsets < 1 dropped).
type planTestProto struct{ Variant int }

func (planTestProto) Name() string { return "plan-test" }

func (p planTestProto) IsRelay(t grid.Topology, src, c grid.Coord) bool {
	return (c.X+c.Y+p.Variant)%2 == 0
}

func (p planTestProto) TxDelay(t grid.Topology, src, c grid.Coord) int {
	return c.X - 2 // < 1 for small X: must be clamped
}

func (p planTestProto) Retransmits(t grid.Topology, src, c grid.Coord) []int {
	return []int{c.Y - 1, 2, -3} // non-positive offsets must be dropped
}

// funcProto carries a func field, making it non-comparable — it must
// be exempt from the plan cache, not panic it.
type funcProto struct{ f func() }

func (funcProto) Name() string                                           { return "func-proto" }
func (funcProto) IsRelay(grid.Topology, grid.Coord, grid.Coord) bool     { return true }
func (funcProto) TxDelay(grid.Topology, grid.Coord, grid.Coord) int      { return 1 }
func (funcProto) Retransmits(grid.Topology, grid.Coord, grid.Coord) []int { return nil }

// TestCompilePlanMatchesProtocol verifies the compiled table against
// direct interface calls for every node.
func TestCompilePlanMatchesProtocol(t *testing.T) {
	topo := grid.NewMesh2D4(7, 5)
	src := grid.C2(4, 3)
	p := planTestProto{Variant: 1}
	pl := compilePlan(topo, p, src, topo.Index(src))
	for i := 0; i < topo.NumNodes(); i++ {
		c := topo.At(i)
		relay := p.IsRelay(topo, src, c)
		if pl.isRelay(int32(i)) != relay {
			t.Fatalf("node %s: plan relay=%v, protocol says %v", c, pl.isRelay(int32(i)), relay)
		}
		if relay {
			want := p.TxDelay(topo, src, c)
			if want < 1 {
				want = 1
			}
			if pl.delay[i] != int32(want) {
				t.Fatalf("node %s: plan delay=%d, want %d", c, pl.delay[i], want)
			}
		}
		var wantOffs []int
		if relay || i == topo.Index(src) {
			for _, off := range p.Retransmits(topo, src, c) {
				if off >= 1 {
					wantOffs = append(wantOffs, off)
				}
			}
		}
		got := pl.retransmits(int32(i))
		if len(got) != len(wantOffs) {
			t.Fatalf("node %s: plan offsets %v, want %v", c, got, wantOffs)
		}
		for k := range got {
			if got[k] != wantOffs[k] {
				t.Fatalf("node %s: plan offsets %v, want %v", c, got, wantOffs)
			}
		}
	}
}

// TestPlanCacheSharing verifies that equal (kind, size, protocol,
// source) keys share one compiled plan and distinct keys do not.
func TestPlanCacheSharing(t *testing.T) {
	topo := grid.NewMesh2D4(13, 9) // odd size: cold key for this test binary
	src := topo.At(5)
	a := planFor(topo, planTestProto{Variant: 7}, src)
	b := planFor(topo, planTestProto{Variant: 7}, src)
	if a != b {
		t.Fatal("identical keys did not share a cached plan")
	}
	if c := planFor(topo, planTestProto{Variant: 8}, src); c == a {
		t.Fatal("different protocol values shared a plan")
	}
	if d := planFor(topo, planTestProto{Variant: 7}, topo.At(6)); d == a {
		t.Fatal("different sources shared a plan")
	}
}

// TestPlanCacheExemptions: non-comparable and pointer-typed protocols
// and irregular topologies compile fresh plans (and must not panic the
// key construction).
func TestPlanCacheExemptions(t *testing.T) {
	topo := grid.NewMesh2D4(5, 4)
	src := topo.At(0)
	fp := funcProto{f: func() {}}
	if planCacheable(fp) {
		t.Fatal("func-carrying protocol reported cacheable")
	}
	if a, b := planFor(topo, fp, src), planFor(topo, fp, src); a == b {
		t.Fatal("non-comparable protocol unexpectedly cached")
	}
	snap, _, err := Snapshot(topo, planTestProto{}, src, Config{})
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if planCacheable(snap) {
		t.Fatal("pointer-typed protocol reported cacheable")
	}
	irr := grid.NewIrregular(4, 4, 0.3, 1.6, 11)
	if a, b := planFor(irr, planTestProto{}, irr.At(0)), planFor(irr, planTestProto{}, irr.At(0)); a == b {
		t.Fatal("irregular topology unexpectedly cached")
	}
}

// TestPlanCacheColdConcurrentAccess hammers one cold plan-cache key
// from many goroutines; under -race this audits the build-once
// LoadOrStore discipline.
func TestPlanCacheColdConcurrentAccess(t *testing.T) {
	topo := grid.NewMesh2D4(17, 11) // size unused elsewhere: cold key
	src := topo.At(42)
	p := planTestProto{Variant: 99}
	plans := make([]*relayPlan, 16)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := range plans {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			plans[g] = planFor(topo, p, src)
		}()
	}
	close(start)
	wg.Wait()
	for _, pl := range plans[1:] {
		if pl != plans[0] {
			t.Fatal("concurrent cold access produced distinct cached plans")
		}
	}
}
