package sim_test

// The differential layer for the engine overhaul: sim.Run (slot-array
// scheduler, pooled arena, memoized relay plan) must produce
// byte-identical Results to sim.RunReference (the preserved
// pre-optimization engine) — every counter, DecodeSlot, TxSlots,
// PerNodeEnergyJ, and the exact trace event sequence — across all four
// canonical topologies x {paper, flooding, flooding-jitter} x
// {lossless, lossy, down nodes, lossy+down}, with and without the
// repair pass. Run under -race by the Makefile's race target.

import (
	"fmt"
	"reflect"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// diffProtocols is the issue's protocol matrix for a topology kind.
func diffProtocols(k grid.Kind) []sim.Protocol {
	return []sim.Protocol{core.ForTopology(k), core.NewFlooding(), core.NewJitteredFlooding(8)}
}

// diffSmallTopo is a reduced mesh of each kind, big enough to exercise
// borders, collisions and scheduler repairs.
func diffSmallTopo(k grid.Kind) grid.Topology {
	if k == grid.Mesh3D6 {
		return grid.NewMesh3D6(4, 4, 3)
	}
	return grid.New(k, 10, 6, 1)
}

// channelConfigs returns the channel/failure matrix for one topology:
// error-free, 10% Bernoulli loss, sampled node failures, and both at
// once. The failure sample is seeded per source so it never downs the
// source.
func channelConfigs(t grid.Topology, src grid.Coord) map[string]sim.Config {
	down := sim.SampleFailures(t, src, 3, 0.1)
	return map[string]sim.Config{
		"lossless":   {},
		"lossy":      {Channel: sim.NewBernoulliLoss(42, 0.1)},
		"down":       {Down: down},
		"lossy+down": {Channel: sim.NewBernoulliLoss(42, 0.1), Down: down},
	}
}

// diffOne runs both engines on one configuration and requires exact
// equality of the Results and of the trace event sequences. It also
// runs the optimized engine twice, so a stale pooled arena or a
// corrupted cached relay plan cannot hide behind a single lucky run.
func diffOne(t *testing.T, topo grid.Topology, p sim.Protocol, src grid.Coord, cfg sim.Config) {
	t.Helper()
	var refTrace, newTrace, repTrace []sim.Event
	refCfg, newCfg, repCfg := cfg, cfg, cfg
	refCfg.Trace = sim.CollectTrace(&refTrace)
	newCfg.Trace = sim.CollectTrace(&newTrace)
	repCfg.Trace = sim.CollectTrace(&repTrace)

	want, err := sim.RunReference(topo, p, src, refCfg)
	if err != nil {
		t.Fatalf("RunReference: %v", err)
	}
	got, err := sim.Run(topo, p, src, newCfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("optimized Result differs from reference\nref: %v\nnew: %v\nref decode: %v\nnew decode: %v\nref tx: %v\nnew tx: %v",
			want, got, want.DecodeSlot, got.DecodeSlot, want.TxSlots, got.TxSlots)
	}
	if !reflect.DeepEqual(refTrace, newTrace) {
		t.Fatalf("trace differs: reference %d events, optimized %d events\nref: %v\nnew: %v",
			len(refTrace), len(newTrace), refTrace, newTrace)
	}
	rep, err := sim.Run(topo, p, src, repCfg)
	if err != nil {
		t.Fatalf("Run (repeat): %v", err)
	}
	if !reflect.DeepEqual(got, rep) || !reflect.DeepEqual(newTrace, repTrace) {
		t.Fatalf("repeated Run on pooled engine not identical")
	}
}

// TestDifferentialEngineSmall covers the full matrix on reduced meshes
// from several sources (corner, center, last node).
func TestDifferentialEngineSmall(t *testing.T) {
	for _, k := range grid.Kinds() {
		topo := diffSmallTopo(k)
		sources := []grid.Coord{topo.At(0), topo.At(topo.NumNodes() / 2), topo.At(topo.NumNodes() - 1)}
		for _, p := range diffProtocols(k) {
			for _, src := range sources {
				for name, cfg := range channelConfigs(topo, src) {
					t.Run(fmt.Sprintf("%s/%s/%s/%s", k, p.Name(), src, name), func(t *testing.T) {
						diffOne(t, topo, p, src, cfg)
					})
				}
			}
		}
	}
}

// TestDifferentialEngineCanonical proves equivalence at the paper's
// 512-node evaluation scale for the full matrix.
func TestDifferentialEngineCanonical(t *testing.T) {
	if testing.Short() {
		t.Skip("canonical 512-node differential matrix skipped in -short mode")
	}
	for _, k := range grid.Kinds() {
		topo := grid.Canonical(k)
		src := center(topo)
		for _, p := range diffProtocols(k) {
			for name, cfg := range channelConfigs(topo, src) {
				t.Run(fmt.Sprintf("%s/%s/%s", k, p.Name(), name), func(t *testing.T) {
					diffOne(t, topo, p, src, cfg)
				})
			}
		}
	}
}

// TestDifferentialDisableRepair covers the raw-rules path (no repair
// pass), where unreached nodes and partial decode vectors are normal.
func TestDifferentialDisableRepair(t *testing.T) {
	for _, k := range grid.Kinds() {
		topo := diffSmallTopo(k)
		src := topo.At(0)
		for _, p := range diffProtocols(k) {
			cfg := sim.Config{DisableRepair: true, Channel: sim.NewBernoulliLoss(7, 0.2)}
			t.Run(fmt.Sprintf("%s/%s", k, p.Name()), func(t *testing.T) {
				diffOne(t, topo, p, src, cfg)
			})
		}
	}
}

// TestDifferentialGossipAndSnapshot exercises protocols off the main
// matrix: gossip (sub-percolation relay sets leave nodes unreached and
// force heavy repair planning) and a snapshot replay (pointer-typed
// protocol, exempt from the plan cache).
func TestDifferentialGossipAndSnapshot(t *testing.T) {
	topo := grid.NewMesh2D4(10, 6)
	src := grid.C2(3, 2)
	for _, p := range []sim.Protocol{core.NewGossip(0.4), core.GossipProtocol{P: 0.8, Jitter: 4}} {
		t.Run(p.Name(), func(t *testing.T) {
			diffOne(t, topo, p, src, sim.Config{})
		})
	}
	snap, _, err := sim.Snapshot(topo, core.NewMesh4Protocol(), src, sim.Config{})
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	t.Run("snapshot", func(t *testing.T) {
		diffOne(t, topo, snap, src, sim.Config{})
	})
}

// hugeDelayProto forwards after a delay far beyond MaxSlots, forcing
// the runaway-schedule guard.
type hugeDelayProto struct{}

func (hugeDelayProto) Name() string                                      { return "huge-delay" }
func (hugeDelayProto) IsRelay(grid.Topology, grid.Coord, grid.Coord) bool { return true }
func (hugeDelayProto) TxDelay(grid.Topology, grid.Coord, grid.Coord) int  { return 1000 }
func (hugeDelayProto) Retransmits(grid.Topology, grid.Coord, grid.Coord) []int {
	return nil
}

// TestDifferentialMaxSlotsError pins identical runaway-schedule errors:
// a protocol that schedules past MaxSlots must fail with the same
// message at the same bound in both engines (the optimized scheduler
// clamps out-of-range buckets but must keep the error observable).
func TestDifferentialMaxSlotsError(t *testing.T) {
	topo := grid.NewMesh2D4(3, 1)
	cfg := sim.Config{MaxSlots: 10}
	_, refErr := sim.RunReference(topo, hugeDelayProto{}, grid.C2(1, 1), cfg)
	_, newErr := sim.Run(topo, hugeDelayProto{}, grid.C2(1, 1), cfg)
	if refErr == nil || newErr == nil {
		t.Fatalf("expected runaway errors, got ref=%v new=%v", refErr, newErr)
	}
	if refErr.Error() != newErr.Error() {
		t.Fatalf("error text differs:\nref: %v\nnew: %v", refErr, newErr)
	}
}
