// Package scenario runs declaratively described experiments: a JSON
// document names a topology, a protocol, sources and options, and the
// runner produces a JSON report. This is the integration surface for
// scripting studies on top of the simulator without writing Go.
package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"wsnbcast/internal/analysis"
	"wsnbcast/internal/converge"
	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/life"
	"wsnbcast/internal/mc"
	"wsnbcast/internal/pipeline"
	"wsnbcast/internal/radio"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/sweep"
)

// Point is a JSON-friendly coordinate (Z defaults to 1). Coord
// converts it to the simulator's grid coordinate.
type Point struct {
	X int `json:"x"`
	Y int `json:"y"`
	Z int `json:"z,omitempty"`
}

func (p Point) Coord() grid.Coord {
	z := p.Z
	if z == 0 {
		z = 1
	}
	return grid.C3(p.X, p.Y, z)
}

// TopologySpec selects and sizes the mesh.
type TopologySpec struct {
	// Kind is "2d3", "2d4", "2d8", "3d6" or "irregular".
	Kind string `json:"kind"`
	M    int    `json:"m"`
	N    int    `json:"n"`
	L    int    `json:"l,omitempty"`
	// Irregular-only parameters.
	Jitter float64 `json:"jitter,omitempty"`
	Radius float64 `json:"radius,omitempty"`
	Seed   uint64  `json:"seed,omitempty"`
}

// PipelineSpec requests a multi-packet run.
type PipelineSpec struct {
	Packets  int `json:"packets"`
	Interval int `json:"interval"` // 0 = find the safe interval
}

// ReliabilitySpec requests a Monte Carlo reliability study
// (internal/mc): seeded replications of the broadcast at every point
// of the loss-rate x failure-rate grid, aggregated into means with
// 95% confidence intervals. The scenario must name exactly one source.
type ReliabilitySpec struct {
	// Seed is the study seed; identical seeds reproduce the study
	// byte-for-byte at any worker count.
	Seed uint64 `json:"seed"`
	// Replications per grid point (>= 1).
	Replications int `json:"replications"`
	// LossRates and FailureRates span the grid; empty means {0}.
	LossRates    []float64 `json:"loss_rates,omitempty"`
	FailureRates []float64 `json:"failure_rates,omitempty"`
}

// LifetimeSpec requests a multi-round lifetime study (internal/life):
// repeated broadcasts from the (single) source with per-node battery
// depletion, death feedback, per-round link churn and source rotation,
// one cell per (strategy, churn rate, replication). Zero BudgetJ,
// MaxRounds, Replications and empty Strategies take the canonical
// defaults (0.05 J, 4096 rounds, 1 replication, "static").
type LifetimeSpec struct {
	// BudgetJ is the initial per-node battery in Joules.
	BudgetJ float64 `json:"budget_j"`
	// MaxRounds bounds each cell's round loop.
	MaxRounds int `json:"max_rounds"`
	// Seed is the study seed; identical seeds reproduce the study
	// byte-for-byte at any worker count.
	Seed uint64 `json:"seed"`
	// Replications per (strategy, churn rate) cell.
	Replications int `json:"replications"`
	// Strategies are the rotation policies to compare: "static",
	// "round-robin", "residual".
	Strategies []string `json:"strategies"`
	// ChurnRates is the per-round link failure probability grid; empty
	// means {0}. PNew is the per-round recovery probability of a down
	// link (0 = permanent failures).
	ChurnRates []float64 `json:"churn_rates"`
	PNew       float64   `json:"p_new,omitempty"`
	// BurnInRounds steps the link churn chain this many times before
	// round 1, so churn starts at steady state instead of all-up; 0
	// keeps the historical all-up start byte-for-byte.
	BurnInRounds int `json:"burnin_rounds,omitempty"`
}

// Scenario is one declarative experiment.
type Scenario struct {
	Name     string       `json:"name"`
	Topology TopologySpec `json:"topology"`
	// Protocol is "paper" (default), "flooding" or "flooding-jitter".
	Protocol string `json:"protocol,omitempty"`
	// JitterSlots is the flooding-jitter window (default 8).
	JitterSlots int `json:"jitter_slots,omitempty"`
	// Sources to broadcast from; empty means every node (a sweep).
	Sources []Point `json:"sources,omitempty"`
	// PacketBits and SpacingM override the radio parameters.
	PacketBits int     `json:"packet_bits,omitempty"`
	SpacingM   float64 `json:"spacing_m,omitempty"`
	// Down lists failed nodes.
	Down []Point `json:"down,omitempty"`
	// Pipeline, when present, runs a multi-packet dissemination from
	// the first source instead of single broadcasts.
	Pipeline *PipelineSpec `json:"pipeline,omitempty"`
	// BudgetJ, when positive, adds a lifetime estimate for the first
	// source.
	BudgetJ float64 `json:"budget_j,omitempty"`
	// Convergecast, when true, also runs a data-collection round to the
	// first source.
	Convergecast bool `json:"convergecast,omitempty"`
	// DisableRepair turns off the scheduler's repair pass, reporting
	// whatever reachability the protocol rules achieve on their own —
	// the setting reliability studies usually want.
	DisableRepair bool `json:"disable_repair,omitempty"`
	// Reliability, when present, runs a Monte Carlo reliability study
	// from the (single) source after the deterministic broadcast.
	Reliability *ReliabilitySpec `json:"reliability,omitempty"`
	// Lifetime, when present, makes the scenario a multi-round lifetime
	// study; it runs through the lifetime endpoint (POST /v1/lifetime,
	// the lifetime job kind, or wsnlife) rather than the scenario
	// runner, and does not combine with the other study sections.
	Lifetime *LifetimeSpec `json:"lifetime,omitempty"`

	// LifetimeNoDelta forces full per-round session runs instead of the
	// default incremental delta propagation (the `wsnlife -no-delta`
	// escape hatch). Runtime-only and deliberately excluded from the
	// document (json:"-"): the delta path is byte-identical by
	// contract, so the toggle must never enter the canonical form or
	// the result-cache identity.
	LifetimeNoDelta bool `json:"-"`
}

// RunReport is one broadcast's metrics.
type RunReport struct {
	Source     Point   `json:"source"`
	Tx         int     `json:"tx"`
	Rx         int     `json:"rx"`
	EnergyJ    float64 `json:"energy_j"`
	Delay      int     `json:"delay"`
	Reached    int     `json:"reached"`
	Total      int     `json:"total"`
	Collisions int     `json:"collisions"`
	Duplicates int     `json:"duplicates"`
	Repairs    int     `json:"repairs"`
}

// Report is the runner's output.
type Report struct {
	Name     string      `json:"name"`
	Topology string      `json:"topology"`
	Protocol string      `json:"protocol"`
	Runs     []RunReport `json:"runs,omitempty"`

	// Sweep summary (present when Sources was empty).
	BestEnergyJ  float64 `json:"best_energy_j,omitempty"`
	WorstEnergyJ float64 `json:"worst_energy_j,omitempty"`
	MaxDelay     int     `json:"max_delay,omitempty"`

	// Pipeline results.
	PipelineInterval  int  `json:"pipeline_interval,omitempty"`
	PipelineSlots     int  `json:"pipeline_slots,omitempty"`
	PipelineDelivered bool `json:"pipeline_delivered,omitempty"`

	// Lifetime estimate.
	LifetimeRounds int     `json:"lifetime_rounds,omitempty"`
	MaxNodeEnergyJ float64 `json:"max_node_energy_j,omitempty"`

	// Convergecast results.
	ConvergeEnergyJ float64 `json:"converge_energy_j,omitempty"`
	ConvergeSlots   int     `json:"converge_slots,omitempty"`

	// Reliability study results: one aggregated point per (loss rate,
	// failure rate), failure-rate major, loss rate minor.
	Reliability []mc.Point `json:"reliability,omitempty"`
	// ReliabilitySeed echoes the study seed the points were produced
	// under.
	ReliabilitySeed uint64 `json:"reliability_seed,omitempty"`

	// Lifetime study results: one cell per (strategy, churn rate,
	// replication), strategy-major, churn-rate middle, replication
	// minor. LifetimeSeed echoes the study seed.
	Lifetime     []life.CellReport `json:"lifetime,omitempty"`
	LifetimeSeed uint64            `json:"lifetime_seed,omitempty"`
}

// Load parses a scenario document. Unknown fields anywhere in the
// document are rejected by name (with a did-you-mean hint for near
// misses), and so is trailing content after the document: a typo like
// "lossrate" must fail loudly rather than silently canonicalize into
// — and serve the cached result of — the default configuration.
func Load(r io.Reader) (Scenario, error) {
	var s Scenario
	err := decodeStrict(r, &s)
	return s, err
}

func (s Scenario) topology() (grid.Topology, error) {
	t := s.Topology
	if t.M < 1 || t.N < 1 {
		return nil, fmt.Errorf("scenario: topology needs m, n >= 1")
	}
	switch strings.ToLower(t.Kind) {
	case "2d3":
		return grid.NewMesh2D3(t.M, t.N), nil
	case "2d4":
		return grid.NewMesh2D4(t.M, t.N), nil
	case "2d8":
		return grid.NewMesh2D8(t.M, t.N), nil
	case "3d6":
		l := t.L
		if l < 1 {
			l = 1
		}
		return grid.NewMesh3D6(t.M, t.N, l), nil
	case "irregular":
		if t.Radius <= 0 {
			return nil, fmt.Errorf("scenario: irregular topology needs radius > 0")
		}
		return grid.NewIrregular(t.M, t.N, t.Jitter, t.Radius, t.Seed), nil
	default:
		return nil, fmt.Errorf("scenario: unknown topology kind %q", t.Kind)
	}
}

func (s Scenario) protocol(t grid.Topology) (sim.Protocol, error) {
	switch strings.ToLower(s.Protocol) {
	case "", "paper":
		if t.Kind() == grid.Irregular {
			return nil, fmt.Errorf("scenario: the paper protocols need a regular topology; use flooding")
		}
		return core.ForTopology(t.Kind()), nil
	case "flooding":
		return core.NewFlooding(), nil
	case "flooding-jitter":
		j := s.JitterSlots
		if j <= 0 {
			j = 8
		}
		return core.NewJitteredFlooding(j), nil
	default:
		return nil, fmt.Errorf("scenario: unknown protocol %q", s.Protocol)
	}
}

func (s Scenario) simConfig() (sim.Config, error) {
	cfg := sim.Config{}
	if s.PacketBits < 0 || s.SpacingM < 0 {
		return cfg, fmt.Errorf("scenario: packet_bits and spacing_m must be positive")
	}
	if s.PacketBits > 0 || s.SpacingM > 0 {
		p := radio.CanonicalPacket()
		if s.PacketBits > 0 {
			p.Bits = s.PacketBits
		}
		if s.SpacingM > 0 {
			p.NeighborDistM = s.SpacingM
		}
		if err := p.Validate(); err != nil {
			return cfg, err
		}
		cfg.Packet = p
	}
	for _, d := range s.Down {
		cfg.Down = append(cfg.Down, d.Coord())
	}
	cfg.DisableRepair = s.DisableRepair
	return cfg, nil
}

// Canonical returns the scenario in a normalized form: topology and
// protocol names lowercased, defaulted fields made explicit (protocol
// "paper", jitter window 8, z coordinates 1) and fields the selected
// topology or protocol ignores zeroed. Two scenarios that are
// byte-different on the wire but describe the same experiment
// canonicalize to the same value, so the canonical JSON encoding is a
// stable identity for result caching.
func (s Scenario) Canonical() Scenario {
	c := s
	c.Topology.Kind = strings.ToLower(s.Topology.Kind)
	c.Protocol = strings.ToLower(s.Protocol)
	if c.Protocol == "" {
		c.Protocol = "paper"
	}
	if c.Protocol == "flooding-jitter" {
		if c.JitterSlots <= 0 {
			c.JitterSlots = 8
		}
	} else {
		c.JitterSlots = 0
	}
	switch c.Topology.Kind {
	case "3d6":
		if c.Topology.L < 1 {
			c.Topology.L = 1
		}
		c.Topology.Jitter, c.Topology.Radius, c.Topology.Seed = 0, 0, 0
	case "irregular":
		c.Topology.L = 0
	default:
		c.Topology.L = 0
		c.Topology.Jitter, c.Topology.Radius, c.Topology.Seed = 0, 0, 0
	}
	pkt := radio.CanonicalPacket()
	if c.PacketBits == pkt.Bits {
		c.PacketBits = 0
	}
	if c.SpacingM == pkt.NeighborDistM {
		c.SpacingM = 0
	}
	c.Sources = canonicalPoints(s.Sources)
	c.Down = canonicalPoints(s.Down)
	if s.Pipeline != nil {
		p := *s.Pipeline
		if p.Interval < 0 {
			p.Interval = 0
		}
		c.Pipeline = &p
	}
	if s.Reliability != nil {
		// The rate grids canonicalize exactly as mc.Run consumes them
		// (sorted, deduplicated, {0} when empty), so byte-different but
		// equivalent studies share one cache identity.
		r := *s.Reliability
		r.LossRates = mc.CanonicalRates(s.Reliability.LossRates)
		r.FailureRates = mc.CanonicalRates(s.Reliability.FailureRates)
		c.Reliability = &r
	}
	if s.Lifetime != nil {
		l := canonicalLifetime(*s.Lifetime)
		c.Lifetime = &l
	}
	return c
}

// canonicalLifetime makes the lifetime section's defaults explicit —
// the canonical battery of 0.05 J (a few hundred rounds for the
// busiest canonical-mesh relay), a 4096-round cap, one replication,
// the static strategy — and normalizes strategy names and the churn
// grid, so equivalent studies share one cache identity.
func canonicalLifetime(l LifetimeSpec) LifetimeSpec {
	if l.BudgetJ <= 0 {
		l.BudgetJ = 0.05
	}
	if l.MaxRounds <= 0 {
		l.MaxRounds = 4096
	}
	if l.Replications <= 0 {
		l.Replications = 1
	}
	if len(l.Strategies) == 0 {
		l.Strategies = []string{string(life.Static)}
	} else {
		sts := make([]string, len(l.Strategies))
		for i, s := range l.Strategies {
			sts[i] = strings.ToLower(s)
		}
		l.Strategies = sts
	}
	l.ChurnRates = mc.CanonicalRates(l.ChurnRates)
	return l
}

func canonicalPoints(ps []Point) []Point {
	if ps == nil {
		return nil
	}
	out := make([]Point, len(ps))
	for i, p := range ps {
		if p.Z == 0 {
			p.Z = 1
		}
		out[i] = p
	}
	return out
}

// Compile validates the scenario and builds its topology, protocol and
// simulation config without running anything. Beyond what Run would
// reject lazily, it checks that every source and down node lies inside
// the mesh and that a pipeline request asks for at least one packet,
// so a caller (the HTTP service) can refuse a bad document before
// committing worker time to it.
func (s Scenario) Compile() (grid.Topology, sim.Protocol, sim.Config, error) {
	topo, err := s.topology()
	if err != nil {
		return nil, nil, sim.Config{}, err
	}
	p, err := s.protocol(topo)
	if err != nil {
		return nil, nil, sim.Config{}, err
	}
	cfg, err := s.simConfig()
	if err != nil {
		return nil, nil, sim.Config{}, err
	}
	for _, src := range s.Sources {
		if !topo.Contains(src.Coord()) {
			return nil, nil, sim.Config{}, fmt.Errorf("scenario: source %s outside the %s mesh", src.Coord(), topo.Kind())
		}
	}
	for _, d := range cfg.Down {
		if !topo.Contains(d) {
			return nil, nil, sim.Config{}, fmt.Errorf("scenario: down node %s outside the %s mesh", d, topo.Kind())
		}
	}
	if s.Pipeline != nil && s.Pipeline.Packets < 1 {
		return nil, nil, sim.Config{}, fmt.Errorf("scenario: pipeline needs packets >= 1")
	}
	if r := s.Reliability; r != nil {
		if len(s.Sources) != 1 {
			return nil, nil, sim.Config{}, fmt.Errorf("scenario: a reliability study needs exactly one source (got %d)", len(s.Sources))
		}
		if s.Pipeline != nil || s.BudgetJ > 0 || s.Convergecast {
			return nil, nil, sim.Config{}, fmt.Errorf("scenario: reliability does not combine with pipeline, budget or convergecast")
		}
		if r.Replications < 1 {
			return nil, nil, sim.Config{}, fmt.Errorf("scenario: reliability needs replications >= 1 (got %d)", r.Replications)
		}
		for _, rate := range r.LossRates {
			if rate < 0 || rate > 1 {
				return nil, nil, sim.Config{}, fmt.Errorf("scenario: loss rate %g outside [0, 1]", rate)
			}
		}
		for _, rate := range r.FailureRates {
			if rate < 0 || rate > 1 {
				return nil, nil, sim.Config{}, fmt.Errorf("scenario: failure rate %g outside [0, 1]", rate)
			}
		}
	}
	if l := s.Lifetime; l != nil {
		if len(s.Sources) != 1 {
			return nil, nil, sim.Config{}, fmt.Errorf("scenario: a lifetime study needs exactly one source (got %d)", len(s.Sources))
		}
		if s.Pipeline != nil || s.BudgetJ > 0 || s.Convergecast || s.Reliability != nil {
			return nil, nil, sim.Config{}, fmt.Errorf("scenario: lifetime does not combine with pipeline, budget, convergecast or reliability")
		}
		cl := canonicalLifetime(*l)
		for _, st := range cl.Strategies {
			if _, err := life.ParseStrategy(st); err != nil {
				if hint := Suggest(st, strategyNames()); hint != "" {
					return nil, nil, sim.Config{}, fmt.Errorf("scenario: unknown lifetime strategy %q (did you mean %q?)", st, hint)
				}
				return nil, nil, sim.Config{}, fmt.Errorf("scenario: unknown lifetime strategy %q", st)
			}
		}
		for _, rate := range cl.ChurnRates {
			if rate < 0 || rate > 1 {
				return nil, nil, sim.Config{}, fmt.Errorf("scenario: churn rate %g outside [0, 1]", rate)
			}
		}
		if cl.PNew < 0 || cl.PNew > 1 {
			return nil, nil, sim.Config{}, fmt.Errorf("scenario: p_new %g outside [0, 1]", cl.PNew)
		}
		if cl.BurnInRounds < 0 {
			return nil, nil, sim.Config{}, fmt.Errorf("scenario: burn-in rounds must be >= 0 (got %d)", cl.BurnInRounds)
		}
	}
	return topo, p, cfg, nil
}

// strategyNames lists the valid lifetime strategies for hints.
func strategyNames() []string {
	var out []string
	for _, s := range life.Strategies() {
		out = append(out, string(s))
	}
	return out
}

// Validate checks the scenario without running it.
func (s Scenario) Validate() error {
	_, _, _, err := s.Compile()
	return err
}

// Run executes the scenario.
func (s Scenario) Run() (Report, error) {
	return s.RunContext(context.Background())
}

// RunContext executes the scenario, checking ctx between broadcasts
// and between phases: once cancelled, it returns the context's error
// promptly without starting further simulations.
func (s Scenario) RunContext(ctx context.Context) (Report, error) {
	rep := Report{Name: s.Name, Topology: strings.ToLower(s.Topology.Kind)}
	topo, p, cfg, err := s.Compile()
	if err != nil {
		return rep, err
	}
	if s.Lifetime != nil {
		// Lifetime cells can run for thousands of rounds each; they go
		// through the cell-sharded lifetime path (POST /v1/lifetime, the
		// lifetime job kind, wsnlife), never the scenario runner.
		return rep, fmt.Errorf("scenario: a lifetime study runs via the lifetime endpoint, not the scenario runner")
	}
	rep.Protocol = p.Name()

	if len(s.Sources) == 0 {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		sum, err := analysis.Sweep(topo, p, cfg)
		if err != nil {
			return rep, err
		}
		rep.BestEnergyJ = sum.Best.EnergyJ
		rep.WorstEnergyJ = sum.Worst.EnergyJ
		rep.MaxDelay = sum.MaxDelay
		return rep, nil
	}

	for _, src := range s.Sources {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		r, err := sim.Run(topo, p, src.Coord(), cfg)
		if err != nil {
			return rep, err
		}
		rep.Runs = append(rep.Runs, RunReport{
			Source: src, Tx: r.Tx, Rx: r.Rx, EnergyJ: r.EnergyJ, Delay: r.Delay,
			Reached: r.Reached, Total: r.Total, Collisions: r.Collisions,
			Duplicates: r.Duplicates, Repairs: r.Repairs,
		})
	}
	first := s.Sources[0].Coord()

	if s.Reliability != nil {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		study, err := mc.Run(ctx, mc.Spec{
			Topology: topo, Protocol: p, Source: first, Config: cfg,
			Seed:         s.Reliability.Seed,
			Replications: s.Reliability.Replications,
			LossRates:    s.Reliability.LossRates,
			FailureRates: s.Reliability.FailureRates,
		})
		if err != nil {
			return rep, err
		}
		rep.Reliability = study.Points
		rep.ReliabilitySeed = study.Seed
	}

	if s.Pipeline != nil {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		interval := s.Pipeline.Interval
		if interval <= 0 {
			interval, err = pipeline.SafeInterval(topo, p, first, 4, 8*topo.NumNodes())
			if err != nil {
				return rep, err
			}
		}
		snap, _, err := sim.Snapshot(topo, p, first, cfg)
		if err != nil {
			return rep, err
		}
		pr, err := pipeline.Run(topo, snap, first, pipeline.Config{
			Packets: s.Pipeline.Packets, Interval: interval,
		})
		if err != nil {
			return rep, err
		}
		rep.PipelineInterval = interval
		rep.PipelineSlots = pr.Slots
		rep.PipelineDelivered = pr.Delivered
	}

	if s.BudgetJ > 0 {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		life, err := analysis.Lifetime(topo, p, first, cfg, s.BudgetJ)
		if err != nil {
			return rep, err
		}
		rep.LifetimeRounds = life.RoundsOnBudget
		rep.MaxNodeEnergyJ = life.MaxNodeEnergyJ
	}

	if s.Convergecast {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		cc, err := converge.Run(topo, first, converge.Config{})
		if err != nil {
			return rep, err
		}
		rep.ConvergeEnergyJ = cc.EnergyJ
		rep.ConvergeSlots = cc.Slots
	}
	return rep, nil
}

// SweepReport broadcasts from every node on the parallel sweep engine
// and reports one row per source plus the paper's best/worst/max-delay
// summary — the body of the HTTP service's /v1/sweep endpoint, shared
// with the CLIs and the job subsystem so all three render byte-identical
// sweep reports. workers sizes the engine (<= 0: GOMAXPROCS); g, when
// non-nil, receives pending-job deltas. The context propagates into the
// engine, so an expired deadline stops the sweep between jobs.
func (s Scenario) SweepReport(ctx context.Context, workers int, g sweep.Gauge) (Report, error) {
	topo, p, cfg, err := s.Compile()
	if err != nil {
		return Report{}, err
	}
	eng := sweep.New(workers)
	if g != nil {
		eng = eng.WithGauge(g)
	}
	results, err := eng.SweepSources(ctx, topo, p, cfg, nil)
	if err != nil {
		return Report{}, err
	}
	rep := Report{Name: s.Name, Topology: s.Topology.Kind, Protocol: p.Name()}
	rep.Runs = make([]RunReport, len(results))
	for i, r := range results {
		src := topo.At(i)
		rep.Runs[i] = RunReport{
			Source: Point{X: src.X, Y: src.Y, Z: src.Z},
			Tx:     r.Tx, Rx: r.Rx, EnergyJ: r.EnergyJ, Delay: r.Delay,
			Reached: r.Reached, Total: r.Total, Collisions: r.Collisions,
			Duplicates: r.Duplicates, Repairs: r.Repairs,
		}
	}
	SweepSummary(&rep)
	return rep, nil
}

// lifeSpec builds the internal/life study spec of the scenario's
// lifetime section. The scenario must have passed Compile (one source,
// no conflicting sections); defaults are applied here exactly as
// Canonical makes them explicit, so canonical and raw documents build
// the same study.
func (s Scenario) lifeSpec(workers int, g sweep.Gauge) (life.Spec, error) {
	topo, p, cfg, err := s.Compile()
	if err != nil {
		return life.Spec{}, err
	}
	if s.Lifetime == nil {
		return life.Spec{}, fmt.Errorf("scenario: no lifetime section")
	}
	l := canonicalLifetime(*s.Lifetime)
	sts := make([]life.Strategy, len(l.Strategies))
	for i, name := range l.Strategies {
		st, err := life.ParseStrategy(name)
		if err != nil {
			return life.Spec{}, fmt.Errorf("scenario: %w", err)
		}
		sts[i] = st
	}
	return life.Spec{
		Topology:     topo,
		Protocol:     p,
		Source:       s.Sources[0].Coord(),
		Config:       cfg,
		BudgetJ:      l.BudgetJ,
		MaxRounds:    l.MaxRounds,
		Seed:         l.Seed,
		Replications: l.Replications,
		Strategies:   sts,
		PFail:        l.ChurnRates,
		PNew:         l.PNew,
		BurnInRounds: l.BurnInRounds,
		Workers:      workers,
		Gauge:        g,
		NoDelta:      s.LifetimeNoDelta,
	}, nil
}

// LifetimeCellCount returns the study's cell count without running
// anything — the job planner and admission control size work with it.
func (s Scenario) LifetimeCellCount() (int, error) {
	spec, err := s.lifeSpec(0, nil)
	if err != nil {
		return 0, err
	}
	return spec.NumCells(), nil
}

// LifetimeMaxRounds returns the study's per-cell round bound, for
// admission control. Burn-in steps count toward the bound: they run
// no broadcasts but still walk the whole link table per step.
func (s Scenario) LifetimeMaxRounds() (int, error) {
	spec, err := s.lifeSpec(0, nil)
	if err != nil {
		return 0, err
	}
	return spec.MaxRounds + spec.BurnInRounds, nil
}

// LifetimeReport runs the whole lifetime study, sharding cells across
// the worker pool — the body of the HTTP service's /v1/lifetime
// endpoint, shared with wsnlife and (cell by cell) the job subsystem
// so all render byte-identical reports. workers sizes the engine
// (<= 0: GOMAXPROCS); g, when non-nil, receives pending-cell deltas.
func (s Scenario) LifetimeReport(ctx context.Context, workers int, g sweep.Gauge) (Report, error) {
	spec, err := s.lifeSpec(workers, g)
	if err != nil {
		return Report{}, err
	}
	cells, err := life.Run(ctx, spec)
	if err != nil {
		return Report{}, err
	}
	return s.lifetimeMerge(spec, cells), nil
}

// LifetimeCell runs one cell of the study, checkpointing through ck
// when non-nil — the job subsystem's per-point unit. checkpointEvery
// is the round cadence of saves (<= 0: life.DefaultCheckpointEvery);
// the cadence never changes the report bytes, only how much work a
// killed process repeats.
func (s Scenario) LifetimeCell(ctx context.Context, index int, ck life.Checkpointer, checkpointEvery int) (life.CellReport, error) {
	spec, err := s.lifeSpec(1, nil)
	if err != nil {
		return life.CellReport{}, err
	}
	spec.CheckpointEvery = checkpointEvery
	return life.RunCell(ctx, spec, index, ck)
}

// LifetimeMerge assembles a lifetime report from distributed cells in
// study order; for cells that round-tripped through JSON the result is
// byte-identical to the report LifetimeReport computed inline.
func (s Scenario) LifetimeMerge(cells []life.CellReport) (Report, error) {
	spec, err := s.lifeSpec(0, nil)
	if err != nil {
		return Report{}, err
	}
	if len(cells) != spec.NumCells() {
		return Report{}, fmt.Errorf("scenario: %d lifetime cells merged into a %d-cell study", len(cells), spec.NumCells())
	}
	return s.lifetimeMerge(spec, cells), nil
}

func (s Scenario) lifetimeMerge(spec life.Spec, cells []life.CellReport) Report {
	return Report{
		Name:         s.Name,
		Topology:     s.Topology.Kind,
		Protocol:     spec.Protocol.Name(),
		Lifetime:     cells,
		LifetimeSeed: spec.Seed,
	}
}

// SweepSummary recomputes a sweep report's best/worst/max-delay summary
// from its per-source rows. The job subsystem uses it to rebuild the
// summary after merging distributed rows; for float64 values that
// round-tripped through JSON the result is bit-identical to the summary
// SweepReport computed inline.
func SweepSummary(rep *Report) {
	for i, r := range rep.Runs {
		if i == 0 || r.EnergyJ < rep.BestEnergyJ {
			rep.BestEnergyJ = r.EnergyJ
		}
		if i == 0 || r.EnergyJ > rep.WorstEnergyJ {
			rep.WorstEnergyJ = r.EnergyJ
		}
		if r.Delay > rep.MaxDelay {
			rep.MaxDelay = r.Delay
		}
	}
}

// Write renders the report as indented JSON.
func (r Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// LoadAll parses either a single scenario object or a JSON array of
// scenarios.
func LoadAll(r io.Reader) ([]Scenario, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimLeftFunc(string(data), func(r rune) bool {
		return r == ' ' || r == '\t' || r == '\n' || r == '\r'
	})
	if strings.HasPrefix(trimmed, "[") {
		var list []Scenario
		if err := decodeStrict(strings.NewReader(string(data)), &list); err != nil {
			return nil, err
		}
		return list, nil
	}
	s, err := Load(strings.NewReader(string(data)))
	if err != nil {
		return nil, err
	}
	return []Scenario{s}, nil
}

// RunAll executes scenarios in parallel (bounded by GOMAXPROCS) and
// returns the reports in input order; the first error aborts.
func RunAll(scenarios []Scenario) ([]Report, error) {
	return RunAllContext(context.Background(), scenarios)
}

// RunAllContext is RunAll under a context: scenarios run in parallel
// (bounded by GOMAXPROCS) and the reports come back in input order.
// When ctx is cancelled mid-batch the call returns promptly — no new
// scenario starts and running ones stop at their next checkpoint —
// with the reports completed so far (index-aligned; unrun slots are
// zero) and an error stating how many of the scenarios finished,
// wrapping the context's error.
func RunAllContext(ctx context.Context, scenarios []Scenario) ([]Report, error) {
	reports := make([]Report, len(scenarios))
	errs := make([]error, len(scenarios))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	if workers < 1 {
		workers = 1
	}
	var completed atomic.Int64
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				reports[i], errs[i] = scenarios[i].RunContext(ctx)
				if errs[i] == nil {
					completed.Add(1)
				}
			}
		}()
	}
feed:
	for i := range scenarios {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return reports, fmt.Errorf("scenario: cancelled after %d/%d scenarios: %w",
			completed.Load(), len(scenarios), err)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scenario %d (%q): %w", i, scenarios[i].Name, err)
		}
	}
	return reports, nil
}

// WriteAll renders reports as an indented JSON array.
func WriteAll(w io.Writer, reports []Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}
