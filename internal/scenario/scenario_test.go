package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func load(t *testing.T, doc string) Scenario {
	t.Helper()
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSingleBroadcast(t *testing.T) {
	s := load(t, `{
		"name": "fig5",
		"topology": {"kind": "2d4", "m": 16, "n": 16},
		"sources": [{"x": 6, "y": 8}]
	}`)
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 1 {
		t.Fatalf("runs = %d", len(rep.Runs))
	}
	r := rep.Runs[0]
	if r.Reached != r.Total || r.Total != 256 {
		t.Errorf("reach %d/%d", r.Reached, r.Total)
	}
	if rep.Protocol != "paper-2d4" {
		t.Errorf("protocol = %q", rep.Protocol)
	}
}

func TestSweepScenario(t *testing.T) {
	s := load(t, `{
		"name": "sweep",
		"topology": {"kind": "2d8", "m": 8, "n": 6}
	}`)
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestEnergyJ <= 0 || rep.WorstEnergyJ < rep.BestEnergyJ {
		t.Errorf("sweep summary: %+v", rep)
	}
	if len(rep.Runs) != 0 {
		t.Error("sweep should not list per-run reports")
	}
}

func TestPipelineAndLifetimeAndConverge(t *testing.T) {
	s := load(t, `{
		"name": "full",
		"topology": {"kind": "2d4", "m": 10, "n": 8},
		"sources": [{"x": 5, "y": 4}],
		"pipeline": {"packets": 5},
		"budget_j": 0.5,
		"convergecast": true
	}`)
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.PipelineDelivered || rep.PipelineInterval < 1 {
		t.Errorf("pipeline: %+v", rep)
	}
	if rep.LifetimeRounds <= 0 || rep.MaxNodeEnergyJ <= 0 {
		t.Errorf("lifetime: %+v", rep)
	}
	if rep.ConvergeEnergyJ <= 0 || rep.ConvergeSlots <= 0 {
		t.Errorf("converge: %+v", rep)
	}
}

func TestIrregularScenario(t *testing.T) {
	s := load(t, `{
		"name": "rgg",
		"topology": {"kind": "irregular", "m": 10, "n": 10, "jitter": 0.3, "radius": 1.5, "seed": 7},
		"protocol": "flooding-jitter",
		"sources": [{"x": 5, "y": 5}]
	}`)
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs[0].Reached != rep.Runs[0].Total {
		t.Errorf("reach %d/%d", rep.Runs[0].Reached, rep.Runs[0].Total)
	}
}

func TestDownNodesScenario(t *testing.T) {
	s := load(t, `{
		"name": "damage",
		"topology": {"kind": "2d4", "m": 8, "n": 8},
		"sources": [{"x": 1, "y": 1}],
		"down": [{"x": 4, "y": 4}, {"x": 5, "y": 5}]
	}`)
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs[0].Total != 62 {
		t.Errorf("total = %d, want 62 live nodes", rep.Runs[0].Total)
	}
}

func TestScenarioErrors(t *testing.T) {
	cases := []string{
		`{"topology": {"kind": "hex", "m": 4, "n": 4}}`,
		`{"topology": {"kind": "2d4"}}`,
		`{"topology": {"kind": "irregular", "m": 4, "n": 4}}`,
		`{"topology": {"kind": "2d4", "m": 4, "n": 4}, "protocol": "bogus"}`,
		`{"topology": {"kind": "irregular", "m": 4, "n": 4, "radius": 1.2}, "protocol": "paper"}`,
		`{"topology": {"kind": "2d4", "m": 4, "n": 4}, "packet_bits": -2, "sources": [{"x":1,"y":1}]}`,
	}
	for _, doc := range cases {
		s := load(t, doc)
		if _, err := s.Run(); err == nil {
			t.Errorf("scenario %s should fail", doc)
		}
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"nope": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Load(strings.NewReader(`{invalid`)); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	s := load(t, `{
		"name": "rt",
		"topology": {"kind": "2d4", "m": 6, "n": 4},
		"sources": [{"x": 3, "y": 2}]
	}`)
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rep.Write(&sb); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "rt" || len(back.Runs) != 1 || back.Runs[0].Tx != rep.Runs[0].Tx {
		t.Errorf("round trip mismatch: %+v", back)
	}
}

func TestPacketOverride(t *testing.T) {
	s := load(t, `{
		"topology": {"kind": "2d4", "m": 6, "n": 4},
		"sources": [{"x": 3, "y": 2}],
		"packet_bits": 1024, "spacing_m": 1.0
	}`)
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	s2 := load(t, `{
		"topology": {"kind": "2d4", "m": 6, "n": 4},
		"sources": [{"x": 3, "y": 2}]
	}`)
	rep2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs[0].EnergyJ <= rep2.Runs[0].EnergyJ {
		t.Errorf("bigger packets should cost more: %g vs %g",
			rep.Runs[0].EnergyJ, rep2.Runs[0].EnergyJ)
	}
}

func TestLoadAllAndRunAll(t *testing.T) {
	docs := `[
		{"name": "a", "topology": {"kind": "2d4", "m": 6, "n": 4}, "sources": [{"x": 3, "y": 2}]},
		{"name": "b", "topology": {"kind": "2d8", "m": 6, "n": 4}, "sources": [{"x": 1, "y": 1}]},
		{"name": "c", "topology": {"kind": "2d3", "m": 6, "n": 4}, "sources": [{"x": 3, "y": 2}]}
	]`
	list, err := LoadAll(strings.NewReader(docs))
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("scenarios = %d", len(list))
	}
	reports, err := RunAll(list)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reports {
		if rep.Name != list[i].Name {
			t.Errorf("report %d out of order: %q", i, rep.Name)
		}
		if rep.Runs[0].Reached != rep.Runs[0].Total {
			t.Errorf("%q incomplete", rep.Name)
		}
	}
	var sb strings.Builder
	if err := WriteAll(&sb, reports); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimSpace(sb.String()), "[") {
		t.Error("WriteAll should emit an array")
	}
}

func TestLoadAllSingleObject(t *testing.T) {
	list, err := LoadAll(strings.NewReader(`{"topology": {"kind": "2d4", "m": 4, "n": 4}}`))
	if err != nil || len(list) != 1 {
		t.Fatalf("single object: %v, %v", list, err)
	}
}

func TestRunAllPropagatesError(t *testing.T) {
	list := []Scenario{
		{Name: "ok", Topology: TopologySpec{Kind: "2d4", M: 4, N: 4}},
		{Name: "bad", Topology: TopologySpec{Kind: "hex", M: 4, N: 4}},
	}
	if _, err := RunAll(list); err == nil || !strings.Contains(err.Error(), "bad") {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestCanonicalIdentity(t *testing.T) {
	// Byte-different documents describing the same experiment must
	// canonicalize to identical values (and hence identical JSON).
	a := load(t, `{
		"topology": {"kind": "2D4", "m": 6, "n": 4, "l": 3},
		"jitter_slots": 5,
		"sources": [{"x": 1, "y": 2}]
	}`)
	b := load(t, `{
		"sources": [{"x": 1, "y": 2, "z": 1}],
		"protocol": "PAPER",
		"packet_bits": 512,
		"spacing_m": 0.5,
		"topology": {"kind": "2d4", "n": 4, "m": 6, "seed": 7}
	}`)
	ja, err := json.Marshal(a.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Errorf("canonical forms differ:\n%s\n%s", ja, jb)
	}
	// A genuinely different experiment must not collapse.
	c := load(t, `{"topology": {"kind": "2d4", "m": 6, "n": 4}, "sources": [{"x": 2, "y": 2}]}`)
	jc, _ := json.Marshal(c.Canonical())
	if string(jc) == string(ja) {
		t.Error("different sources canonicalized to the same form")
	}
}

func TestCanonicalDefaults(t *testing.T) {
	s := load(t, `{"topology": {"kind": "3d6", "m": 4, "n": 4}, "protocol": "flooding-jitter"}`)
	c := s.Canonical()
	if c.Topology.L != 1 {
		t.Errorf("3d6 L = %d, want 1", c.Topology.L)
	}
	if c.JitterSlots != 8 {
		t.Errorf("jitter slots = %d, want 8", c.JitterSlots)
	}
	if c.Protocol != "flooding-jitter" {
		t.Errorf("protocol = %q", c.Protocol)
	}
}

func TestCompileRejectsOutsideSource(t *testing.T) {
	s := load(t, `{"topology": {"kind": "2d4", "m": 4, "n": 4}, "sources": [{"x": 9, "y": 0}]}`)
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("err = %v, want outside-mesh error", err)
	}
	s = load(t, `{"topology": {"kind": "2d4", "m": 4, "n": 4}, "down": [{"x": 0, "y": 9}]}`)
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("err = %v, want outside-mesh error", err)
	}
	s = load(t, `{"topology": {"kind": "2d4", "m": 4, "n": 4}, "sources": [{"x": 1, "y": 1}], "pipeline": {"packets": 0}}`)
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "packets") {
		t.Errorf("err = %v, want pipeline-packets error", err)
	}
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := load(t, `{"topology": {"kind": "2d4", "m": 8, "n": 8}, "sources": [{"x": 1, "y": 1}]}`)
	if _, err := s.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRunAllContextCancelledUpFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	scenarios := []Scenario{
		load(t, `{"topology": {"kind": "2d4", "m": 4, "n": 4}, "sources": [{"x": 1, "y": 1}]}`),
		load(t, `{"topology": {"kind": "2d3", "m": 4, "n": 4}, "sources": [{"x": 1, "y": 1}]}`),
	}
	reports, err := RunAllContext(ctx, scenarios)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "cancelled after 0/2") {
		t.Errorf("err = %v, want partial-results message", err)
	}
	if len(reports) != 2 {
		t.Errorf("reports = %d, want index-aligned slice", len(reports))
	}
}

func TestRunAllContextCancelMidBatch(t *testing.T) {
	// A batch far too heavy to finish inside the deadline — each
	// scenario is a full 512-source sweep: the call must come back
	// promptly with a partial-results error rather than grinding
	// through all 256 sweeps.
	doc := `{"topology": {"kind": "2d8", "m": 32, "n": 16}}`
	scenarios := make([]Scenario, 256)
	for i := range scenarios {
		scenarios[i] = load(t, doc)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	reports, err := RunAllContext(ctx, scenarios)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "cancelled after") {
		t.Errorf("err = %v, want cancelled-after message", err)
	}
	if len(reports) != 256 {
		t.Errorf("reports = %d, want index-aligned slice", len(reports))
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

func TestReliabilityScenario(t *testing.T) {
	s := load(t, `{
		"name": "lossy",
		"topology": {"kind": "2d4", "m": 10, "n": 6},
		"sources": [{"x": 5, "y": 3}],
		"disable_repair": true,
		"reliability": {
			"seed": 11,
			"replications": 10,
			"loss_rates": [0, 0.2],
			"failure_rates": [0, 0.1]
		}
	}`)
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 1 {
		t.Fatalf("runs = %d, want the deterministic baseline run", len(rep.Runs))
	}
	if len(rep.Reliability) != 4 {
		t.Fatalf("reliability points = %d, want 4", len(rep.Reliability))
	}
	if rep.ReliabilitySeed != 11 {
		t.Errorf("reliability_seed = %d", rep.ReliabilitySeed)
	}
	p0 := rep.Reliability[0]
	if p0.LossRate != 0 || p0.FailureRate != 0 || p0.Reachability.Mean != 1 {
		t.Errorf("zero-rate point: %+v", p0)
	}
	lossy := rep.Reliability[1]
	if lossy.LossRate != 0.2 || lossy.Reachability.Mean >= 1 {
		t.Errorf("lossy point did not degrade: %+v", lossy)
	}
}

func TestReliabilityValidation(t *testing.T) {
	for name, doc := range map[string]string{
		"no source": `{"topology": {"kind": "2d4", "m": 4, "n": 4},
			"reliability": {"replications": 3}}`,
		"two sources": `{"topology": {"kind": "2d4", "m": 4, "n": 4},
			"sources": [{"x": 1, "y": 1}, {"x": 2, "y": 2}],
			"reliability": {"replications": 3}}`,
		"zero replications": `{"topology": {"kind": "2d4", "m": 4, "n": 4},
			"sources": [{"x": 1, "y": 1}], "reliability": {"replications": 0}}`,
		"negative replications": `{"topology": {"kind": "2d4", "m": 4, "n": 4},
			"sources": [{"x": 1, "y": 1}], "reliability": {"replications": -2}}`,
		"loss rate above 1": `{"topology": {"kind": "2d4", "m": 4, "n": 4},
			"sources": [{"x": 1, "y": 1}],
			"reliability": {"replications": 3, "loss_rates": [1.5]}}`,
		"negative failure rate": `{"topology": {"kind": "2d4", "m": 4, "n": 4},
			"sources": [{"x": 1, "y": 1}],
			"reliability": {"replications": 3, "failure_rates": [-0.1]}}`,
		"combined with pipeline": `{"topology": {"kind": "2d4", "m": 4, "n": 4},
			"sources": [{"x": 1, "y": 1}], "pipeline": {"packets": 2},
			"reliability": {"replications": 3}}`,
	} {
		if err := load(t, doc).Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// Equivalent reliability documents — unsorted, duplicated rate grids,
// empty grids vs explicit {0} — canonicalize to one identity, so the
// service cache and singleflight treat them as the same request.
func TestReliabilityCanonicalIdentity(t *testing.T) {
	a := load(t, `{
		"topology": {"kind": "2d4", "m": 6, "n": 4},
		"sources": [{"x": 1, "y": 1}],
		"reliability": {"seed": 5, "replications": 4, "loss_rates": [0.2, 0, 0.2]}
	}`).Canonical()
	b := load(t, `{
		"topology": {"kind": "2d4", "m": 6, "n": 4},
		"sources": [{"x": 1, "y": 1, "z": 1}],
		"protocol": "paper",
		"reliability": {"seed": 5, "replications": 4, "loss_rates": [0, 0.2], "failure_rates": [0]}
	}`).Canonical()
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Errorf("equivalent reliability docs canonicalize differently:\n%s\n%s", ja, jb)
	}
}

// The strict decoder names the offending field and suggests the real
// one for near misses, at any nesting level.
func TestLoadUnknownFieldSuggestions(t *testing.T) {
	cases := []struct {
		doc  string
		want []string
	}{
		{`{"topology": {"kind": "2d4", "m": 4, "n": 4}, "lossrate": 0.1}`,
			[]string{`"lossrate"`, `"loss_rates"`}},
		{`{"topology": {"kind": "2d4", "m": 4, "n": 4}, "sources": [{"x": 1, "y": 1}],
			"reliability": {"replications": 3, "loss_rate": [0.1]}}`,
			[]string{`"loss_rate"`, `"loss_rates"`}},
		{`{"topology": {"kind": "2d4", "m": 4, "n": 4}, "disablerepair": true}`,
			[]string{`"disablerepair"`, `"disable_repair"`}},
		{`{"topology": {"kind": "2d4", "m": 4, "n": 4}, "zzqx": 1}`,
			[]string{`"zzqx"`}},
	}
	for _, c := range cases {
		_, err := Load(strings.NewReader(c.doc))
		if err == nil {
			t.Errorf("doc with unknown field accepted: %s", c.doc)
			continue
		}
		for _, w := range c.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("error %q missing %s", err, w)
			}
		}
	}
	// The far-off typo must not get a misleading suggestion.
	_, err := Load(strings.NewReader(`{"topology": {"kind": "2d4", "m": 4, "n": 4}, "zzqx": 1}`))
	if err != nil && strings.Contains(err.Error(), "did you mean") {
		t.Errorf("far-off typo got a suggestion: %v", err)
	}
}

func TestLoadRejectsTrailingContent(t *testing.T) {
	for _, doc := range []string{
		`{"topology": {"kind": "2d4", "m": 4, "n": 4}} {"x": 1}`,
		`{"topology": {"kind": "2d4", "m": 4, "n": 4}} trailing`,
	} {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("trailing content accepted: %s", doc)
		}
	}
	// A trailing newline stays fine.
	if _, err := Load(strings.NewReader("{\"topology\": {\"kind\": \"2d4\", \"m\": 4, \"n\": 4}}\n")); err != nil {
		t.Errorf("trailing newline rejected: %v", err)
	}
	if _, err := LoadAll(strings.NewReader(`[{"topology": {"kind": "2d4", "m": 4, "n": 4}}] x`)); err == nil {
		t.Error("trailing content after array accepted")
	}
}

func TestDisableRepairScenario(t *testing.T) {
	s := load(t, `{
		"topology": {"kind": "2d4", "m": 8, "n": 8},
		"protocol": "flooding",
		"sources": [{"x": 1, "y": 1}],
		"disable_repair": true
	}`)
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs[0].Repairs != 0 {
		t.Errorf("disable_repair still repaired %d times", rep.Runs[0].Repairs)
	}
}
