package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"strings"
)

// decodeStrict decodes exactly one JSON document into v, rejecting
// unknown fields at any nesting level and any trailing content after
// the document. The unknown-field rejection is what protects the
// service cache: a misspelled option must become a 400, not a silent
// fall-through to the default configuration's cache entry.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("scenario: %w", annotateUnknownField(err))
	}
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("scenario: trailing content after the JSON document")
	}
	return nil
}

// annotateUnknownField upgrades encoding/json's bare
// `unknown field "x"` error with a did-you-mean hint when x is a near
// miss of a real field anywhere in the scenario schema.
func annotateUnknownField(err error) error {
	msg := err.Error()
	const marker = `unknown field "`
	i := strings.Index(msg, marker)
	if i < 0 {
		return err
	}
	rest := msg[i+len(marker):]
	j := strings.Index(rest, `"`)
	if j < 0 {
		return err
	}
	field := rest[:j]
	if hint := closestField(field); hint != "" {
		return fmt.Errorf(`unknown field %q (did you mean %q?)`, field, hint)
	}
	return fmt.Errorf("unknown field %q", field)
}

// knownFields is every JSON field name reachable from a scenario
// document, collected once by reflection so the hint list can never
// drift from the structs.
var knownFields = collectFields(
	reflect.TypeOf(Scenario{}),
	reflect.TypeOf(TopologySpec{}),
	reflect.TypeOf(PipelineSpec{}),
	reflect.TypeOf(ReliabilitySpec{}),
	reflect.TypeOf(LifetimeSpec{}),
	reflect.TypeOf(Point{}),
)

func collectFields(types ...reflect.Type) []string {
	var out []string
	for _, t := range types {
		for i := 0; i < t.NumField(); i++ {
			tag := t.Field(i).Tag.Get("json")
			name, _, _ := strings.Cut(tag, ",")
			if name != "" && name != "-" {
				out = append(out, name)
			}
		}
	}
	return out
}

// closestField returns the known field nearest to the typo, or "" when
// nothing is close.
func closestField(typo string) string {
	return Suggest(typo, knownFields)
}

// Suggest returns the candidate nearest to got, or "" when nothing is
// close: a match after lowercasing and dropping underscores and
// dashes, or an edit distance of at most 2. The CLIs share it so their
// flag validation hints ("did you mean ...?") read exactly like the
// decoder's unknown-field hints.
func Suggest(got string, candidates []string) string {
	norm := func(s string) string {
		s = strings.ToLower(s)
		s = strings.ReplaceAll(s, "_", "")
		return strings.ReplaceAll(s, "-", "")
	}
	best, bestDist := "", 3
	for _, c := range candidates {
		if norm(c) == norm(got) {
			return c
		}
		if d := editDistance(strings.ToLower(got), strings.ToLower(c)); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance, small-string DP.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
