package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"wsnbcast/internal/life"
)

// A small lifetime study that dies within its round budget.
const lifetimeDoc = `{
  "topology": {"kind": "2d4", "m": 10, "n": 10},
  "sources": [{"x": 5, "y": 5}],
  "lifetime": {
    "budget_j": 0.002,
    "max_rounds": 96,
    "seed": 7,
    "replications": 2,
    "strategies": ["static", "residual"],
    "churn_rates": [0, 0.02],
    "p_new": 0.25
  }
}`

func loadLifetime(t *testing.T) Scenario {
	t.Helper()
	s, err := Load(strings.NewReader(lifetimeDoc))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLifetimeDecodeStrict(t *testing.T) {
	s := loadLifetime(t)
	if s.Lifetime == nil || s.Lifetime.BudgetJ != 0.002 || len(s.Lifetime.Strategies) != 2 {
		t.Fatalf("lifetime section lost in decoding: %+v", s.Lifetime)
	}
	bad := strings.Replace(lifetimeDoc, `"churn_rates"`, `"churnrates"`, 1)
	_, err := Load(strings.NewReader(bad))
	if err == nil {
		t.Fatal("typo'd lifetime field accepted")
	}
	if !strings.Contains(err.Error(), `did you mean "churn_rates"`) {
		t.Errorf("no did-you-mean hint: %v", err)
	}
}

func TestLifetimeCanonicalDefaults(t *testing.T) {
	s := Scenario{
		Topology: TopologySpec{Kind: "2D4", M: 8, N: 8},
		Sources:  []Point{{X: 4, Y: 4}},
		Lifetime: &LifetimeSpec{Strategies: []string{"Static"}},
	}
	c := s.Canonical()
	l := c.Lifetime
	if l.BudgetJ != 0.05 || l.MaxRounds != 4096 || l.Replications != 1 {
		t.Errorf("defaults not explicit: %+v", l)
	}
	if len(l.Strategies) != 1 || l.Strategies[0] != "static" {
		t.Errorf("strategy not lowercased: %v", l.Strategies)
	}
	if len(l.ChurnRates) != 1 || l.ChurnRates[0] != 0 {
		t.Errorf("empty churn grid not canonicalized to {0}: %v", l.ChurnRates)
	}
	// Canonicalization is idempotent — the cache identity is stable.
	if c2 := c.Canonical(); !bytes.Equal(mustMarshal(t, c), mustMarshal(t, c2)) {
		t.Error("canonicalization not idempotent")
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestLifetimeValidation(t *testing.T) {
	base := loadLifetime(t)
	cases := map[string]func(*Scenario){
		"two sources":   func(s *Scenario) { s.Sources = append(s.Sources, Point{X: 1, Y: 1}) },
		"no sources":    func(s *Scenario) { s.Sources = nil },
		"with budget":   func(s *Scenario) { s.BudgetJ = 0.1 },
		"with pipeline": func(s *Scenario) { s.Pipeline = &PipelineSpec{Packets: 2} },
		"with reliability": func(s *Scenario) {
			s.Reliability = &ReliabilitySpec{Seed: 1, Replications: 10}
		},
		"bad churn rate": func(s *Scenario) { s.Lifetime.ChurnRates = []float64{2} },
		"bad p_new":      func(s *Scenario) { s.Lifetime.PNew = 1.5 },
		"bad burn-in":    func(s *Scenario) { s.Lifetime.BurnInRounds = -1 },
	}
	for name, mut := range cases {
		s := base
		l := *base.Lifetime
		s.Lifetime = &l
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// burnin_rounds decodes strictly (typos are named, with a hint) and
// survives canonicalization: a zero burn-in is omitted from the
// canonical form, so pre-existing documents keep their cache identity.
func TestLifetimeBurnInDecodeAndCanonical(t *testing.T) {
	doc := strings.Replace(lifetimeDoc, `"p_new": 0.25`, `"p_new": 0.25,
    "burnin_rounds": 32`, 1)
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Lifetime.BurnInRounds != 32 {
		t.Fatalf("burnin_rounds = %d, want 32", s.Lifetime.BurnInRounds)
	}
	bad := strings.Replace(doc, `"burnin_rounds"`, `"burn_in_rounds"`, 1)
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Error("typo'd burn-in field accepted")
	} else if !strings.Contains(err.Error(), `did you mean "burnin_rounds"`) {
		t.Errorf("no did-you-mean hint: %v", err)
	}
	c := s.Canonical()
	if c.Lifetime.BurnInRounds != 32 {
		t.Errorf("canonicalization dropped burn-in: %+v", c.Lifetime)
	}
	if c2 := c.Canonical(); !bytes.Equal(mustMarshal(t, c), mustMarshal(t, c2)) {
		t.Error("canonicalization not idempotent with burn-in set")
	}
	// Zero burn-in is omitted, keeping historical document bytes stable.
	if b := mustMarshal(t, loadLifetime(t).Canonical()); bytes.Contains(b, []byte("burnin_rounds")) {
		t.Errorf("zero burn-in serialized into the canonical form: %s", b)
	}
}

func TestLifetimeStrategyHint(t *testing.T) {
	s := loadLifetime(t)
	l := *s.Lifetime
	l.Strategies = []string{"residul"}
	s.Lifetime = &l
	err := s.Validate()
	if err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if !strings.Contains(err.Error(), `did you mean "residual"`) {
		t.Errorf("no strategy hint: %v", err)
	}
}

// The scenario runner refuses lifetime sections: they run through the
// dedicated lifetime path.
func TestLifetimeRejectedByRunContext(t *testing.T) {
	s := loadLifetime(t)
	if _, err := s.RunContext(context.Background()); err == nil {
		t.Fatal("RunContext ran a lifetime study")
	}
}

func TestLifetimeReportWorkersIdentical(t *testing.T) {
	s := loadLifetime(t)
	var want []byte
	for _, workers := range []int{1, 3} {
		rep, err := s.LifetimeReport(context.Background(), workers, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := mustMarshal(t, rep)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: report differs", workers)
		}
	}
}

// Cell-by-cell execution plus LifetimeMerge — the job subsystem's path
// — must reproduce the synchronous report byte for byte, including a
// JSON round trip of every cell payload (how the store serves points).
func TestLifetimeMergeMatchesSync(t *testing.T) {
	s := loadLifetime(t)
	sync, err := s.LifetimeReport(context.Background(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.LifetimeCellCount()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(sync.Lifetime) {
		t.Fatalf("LifetimeCellCount = %d, sync report has %d cells", n, len(sync.Lifetime))
	}
	cells := make([]life.CellReport, n)
	for i := 0; i < n; i++ {
		c, err := s.LifetimeCell(context.Background(), i, nil, 0)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		raw := mustMarshal(t, c)
		if err := json.Unmarshal(raw, &cells[i]); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := s.LifetimeMerge(cells)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustMarshal(t, merged), mustMarshal(t, sync); !bytes.Equal(got, want) {
		t.Errorf("merged report differs from sync:\n got %s\nwant %s", got, want)
	}
}
